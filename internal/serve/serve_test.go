package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vortex/internal/fleet"
)

// stubEngine is a scriptable Engine: deterministic scores (score j =
// sum(x) + j mod small prime keeps argmax input-dependent), optional
// gate to block batches, batch-size recording.
type stubEngine struct {
	mu         sync.Mutex
	batchSizes []int
	gate       chan struct{} // when non-nil, ReadBatch blocks until it closes
	fail       atomic.Bool   // when set, ReadBatch errors
	calls      atomic.Int64
}

func (e *stubEngine) ReadBatch(xs [][]float64) (fleet.BatchResult, error) {
	e.calls.Add(1)
	if e.gate != nil {
		<-e.gate
	}
	if e.fail.Load() {
		return fleet.BatchResult{}, fmt.Errorf("stub: engine down")
	}
	e.mu.Lock()
	e.batchSizes = append(e.batchSizes, len(xs))
	e.mu.Unlock()
	res := fleet.BatchResult{
		Scores:  make([][]float64, len(xs)),
		Classes: make([]int, len(xs)),
		Member:  "stub0",
	}
	for i, x := range xs {
		res.Scores[i] = stubScores(x)
		res.Classes[i] = argmax(res.Scores[i])
	}
	return res, nil
}

// stubScores maps an input to a deterministic 10-class score vector.
func stubScores(x []float64) []float64 {
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	s := make([]float64, 10)
	for j := range s {
		s[j] = sum * float64((j*7+int(sum*100))%11)
	}
	return s
}

func argmax(s []float64) int {
	best := 0
	for i, v := range s {
		if v > s[best] {
			best = i
		}
	}
	return best
}

// startServer boots a Server on a loopback listener and returns it
// with its address; the cleanup drains it (unless the test already
// did).
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		if !s.Draining() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("cleanup shutdown: %v", err)
			}
		}
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return s, ln.Addr().String()
}

func testInput(seed int) []float64 {
	x := make([]float64, 4)
	for i := range x {
		x[i] = float64((seed+i)%10) / 10
	}
	return x
}

func postClassify(t *testing.T, addr string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/classify", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestJSONClassify(t *testing.T) {
	eng := &stubEngine{}
	_, addr := startServer(t, Config{Inputs: 4, Engine: eng})

	x := testInput(3)
	resp, body := postClassify(t, addr, ClassifyRequest{Input: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Result == nil {
		t.Fatal("missing result")
	}
	want := stubScores(x)
	if cr.Result.Class != argmax(want) {
		t.Errorf("class %d, want %d", cr.Result.Class, argmax(want))
	}
	if len(cr.Result.Scores) != 10 {
		t.Errorf("got %d scores, want 10", len(cr.Result.Scores))
	}
	if cr.Result.Member != "stub0" {
		t.Errorf("member %q", cr.Result.Member)
	}

	// Client-side batch.
	resp, body = postClassify(t, addr, ClassifyRequest{Inputs: [][]float64{testInput(1), testInput(2)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br ClassifyResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
}

func TestJSONValidation(t *testing.T) {
	eng := &stubEngine{}
	_, addr := startServer(t, Config{Inputs: 4, Engine: eng, BatchMax: 4})

	cases := []struct {
		name string
		body any
		want int
	}{
		{"wrong dimension", ClassifyRequest{Input: make([]float64, 7)}, http.StatusBadRequest},
		{"empty", ClassifyRequest{}, http.StatusBadRequest},
		{"both set", map[string]any{"input": testInput(0), "inputs": [][]float64{testInput(1)}}, http.StatusBadRequest},
		{"oversized batch", ClassifyRequest{Inputs: [][]float64{
			testInput(0), testInput(1), testInput(2), testInput(3), testInput(4)}}, http.StatusBadRequest},
		{"non-finite", map[string]any{"input": []any{0.1, "NaN", 0.2, 0.3}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postClassify(t, addr, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	if got := eng.calls.Load(); got != 0 {
		t.Errorf("engine saw %d batches from invalid requests", got)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// One worker blocked on the gate, queue depth 2: the first request
	// occupies the worker, two fill the queue, the next must get 429.
	eng := &stubEngine{gate: make(chan struct{})}
	s, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, QueueDepth: 2, Workers: 1, BatchMax: 1, BatchLinger: -1,
		RetryAfter: 1500 * time.Millisecond,
	})

	var wg sync.WaitGroup
	results := make(chan int, 16)
	// Saturate: the gate holds the worker, so at most 1 (in worker) + 2
	// (queued) requests are in flight; send 8, expect >= 5 rejections.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(ClassifyRequest{Input: testInput(i)})
			resp, err := http.Post("http://"+addr+"/v1/classify", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if ra := resp.Header.Get("Retry-After"); ra != "2" {
					t.Errorf("Retry-After %q, want %q (1.5s rounded up)", ra, "2")
				}
				var er ErrorResponse
				json.NewDecoder(resp.Body).Decode(&er)
				if er.RetryAfterMs != 1500 {
					t.Errorf("retry_after_ms %d, want 1500", er.RetryAfterMs)
				}
			}
			results <- resp.StatusCode
		}(i)
	}
	// Wait until the rejections have landed, then open the gate so the
	// admitted requests drain.
	deadline := time.After(10 * time.Second)
	got429 := 0
	collected := 0
	var codes []int
	for collected < 5 { // 8 sent, at most 3 admitted => at least 5 rejected
		select {
		case c := <-results:
			collected++
			codes = append(codes, c)
			if c == http.StatusTooManyRequests {
				got429++
			}
		case <-deadline:
			t.Fatalf("only %d responses before the gate opened (codes %v)", collected, codes)
		}
	}
	close(eng.gate)
	wg.Wait()
	close(results)
	for c := range results {
		codes = append(codes, c)
		if c == http.StatusTooManyRequests {
			got429++
		}
	}
	if got429 < 5 {
		t.Errorf("got %d 429s from 8 requests over a 2-deep queue, want >= 5 (codes %v)", got429, codes)
	}
	st := s.Stats()
	if st.RejectedQueueFull != int64(got429) {
		t.Errorf("stats rejected_queue_full %d, want %d", st.RejectedQueueFull, got429)
	}
	if st.Accepted+st.RejectedQueueFull != 8 {
		t.Errorf("accepted %d + rejected %d != 8", st.Accepted, st.RejectedQueueFull)
	}
}

func TestBinaryQueueFullStatus(t *testing.T) {
	eng := &stubEngine{gate: make(chan struct{})}
	_, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, QueueDepth: 1, Workers: 1, BatchMax: 1, BatchLinger: -1,
		RetryAfter: 300 * time.Millisecond,
	})

	// Fill the worker and the queue from two connections, then a third
	// must see StatusOverloaded.
	var fillWg sync.WaitGroup
	for i := 0; i < 2; i++ {
		c, err := DialBinary(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		fillWg.Add(1)
		go func(c *BinaryClient, i int) {
			defer fillWg.Done()
			if _, err := c.Classify(testInput(i)); err != nil {
				t.Errorf("filler %d: %v", i, err)
			}
		}(c, i)
	}
	// Let the fillers occupy worker + queue.
	waitFor(t, 5*time.Second, func() bool { return eng.calls.Load() >= 1 })

	c3, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	var overloaded bool
	for i := 0; i < 50; i++ {
		_, err = c3.Classify(testInput(9))
		var rerr *RemoteError
		if errors.As(err, &rerr) && rerr.Status == StatusOverloaded {
			overloaded = true
			if rerr.RetryAfter != 300*time.Millisecond {
				t.Errorf("retry-after %v, want 300ms", rerr.RetryAfter)
			}
			break
		}
		// The queue may briefly have room while the filler's request
		// moves into the worker; re-fill by trying again.
	}
	if !overloaded {
		t.Error("never saw StatusOverloaded from a saturated queue")
	}
	close(eng.gate)
	fillWg.Wait()
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestMicroBatching(t *testing.T) {
	// Many concurrent single-input requests with a generous linger must
	// coalesce into multi-request ReadBatch calls.
	eng := &stubEngine{}
	_, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, Workers: 1, BatchMax: 16, BatchLinger: 5 * time.Millisecond,
	})
	const n = 48
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postClassify(t, addr, ClassifyRequest{Input: testInput(i)})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	eng.mu.Lock()
	defer eng.mu.Unlock()
	total, maxB := 0, 0
	for _, b := range eng.batchSizes {
		total += b
		if b > maxB {
			maxB = b
		}
	}
	if total != n {
		t.Errorf("batches cover %d requests, want %d", total, n)
	}
	if maxB < 2 {
		t.Errorf("max micro-batch size %d; concurrent load never coalesced (sizes %v)", maxB, eng.batchSizes)
	}
}

func TestEngineFailure(t *testing.T) {
	eng := &stubEngine{}
	eng.fail.Store(true)
	s, addr := startServer(t, Config{Inputs: 4, Engine: eng})
	resp, body := postClassify(t, addr, ClassifyRequest{Input: testInput(0)})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "engine down") {
		t.Errorf("body %q does not carry the engine error", body)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Errorf("failed count %d, want 1", st.Failed)
	}
}

func TestHealthAndStats(t *testing.T) {
	eng := &stubEngine{}
	s, addr := startServer(t, Config{Inputs: 4, Engine: eng})
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "serving" || h.Inputs != 4 {
		t.Errorf("healthz %+v", h)
	}
	if _, err := s.submit(testInput(1)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get("http://" + addr + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Served != 1 || st.Accepted != 1 {
		t.Errorf("statz %+v", st)
	}

	// The Prometheus exposition endpoint serves the shared registry.
	resp, err = http.Get("http://" + addr + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "serve_served_total") {
		t.Errorf("prometheus exposition missing serve counters:\n%.400s", buf.String())
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(Config{Engine: &stubEngine{}}); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := New(Config{Inputs: 4, Engine: &stubEngine{}, BatchLinger: -2}); err != nil {
		t.Errorf("negative linger (= disabled) rejected: %v", err)
	}
}

// TestServeRealFleet wires a real quick-scale analytic fleet under the
// server and checks classifications flow end to end — the integration
// path vortexd runs, minus the process boundary.
func TestServeRealFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping fleet boot (trains a classifier)")
	}
	boot, err := BuildFleet(BootConfig{Scale: "quick", Members: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if boot.Inputs != 49 {
		t.Fatalf("quick-scale inputs %d, want 49", boot.Inputs)
	}
	s, addr := startServer(t, Config{Inputs: boot.Inputs, Engine: boot.Fleet})

	correct, n := 0, 0
	for _, smp := range boot.Test.Samples[:40] {
		resp, body := postClassify(t, addr, ClassifyRequest{Input: smp.Pixels})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var cr ClassifyResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Result.Member == "" {
			t.Fatal("result missing member id")
		}
		if cr.Result.Class == smp.Label {
			correct++
		}
		n++
	}
	// The fleet's own accuracy is ~0.6+ at quick scale; served answers
	// must look like classifications, not noise.
	if frac := float64(correct) / float64(n); frac < 0.3 {
		t.Errorf("served accuracy %.2f over %d samples; routing looks broken", frac, n)
	}
	if st := s.Stats(); st.Fleet == nil {
		t.Error("stats missing fleet snapshot for a fleet engine")
	}

	// Binary and JSON answers agree on the real fleet too.
	bc, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	x := boot.Test.Samples[0].Pixels
	bin, err := bc.Classify(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postClassify(t, addr, ClassifyRequest{Input: x})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr ClassifyResponse
	json.Unmarshal(body, &cr)
	if bin.Class != cr.Result.Class {
		t.Errorf("binary class %d != json class %d", bin.Class, cr.Result.Class)
	}
}
