package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// The binary hot path shares the HTTP listener: a connection whose
// first four bytes are Magic speaks length-prefixed frames instead of
// HTTP. All integers are little-endian.
//
// Request frame:   [u32 count][count x f64]        one input vector
// Response frame:  [u8 status] then
//   StatusOK:          [i32 class][u8 degraded][u32 n][n x f64 scores]
//   anything else:     [u32 retryAfterMs][u32 len][len bytes message]
//
// Requests on one connection are answered in order, one response per
// request; concurrency comes from opening more connections, and the
// server's micro-batcher coalesces frames across connections.

// Magic is the 4-byte connection preamble that selects the binary
// protocol on the shared listener.
var Magic = [4]byte{'V', 'X', 'B', '1'}

// Binary response status codes.
const (
	// StatusOK answers a classified request.
	StatusOK byte = 0
	// StatusBadRequest rejects a malformed frame (wrong dimension,
	// non-finite values, oversized count).
	StatusBadRequest byte = 1
	// StatusOverloaded rejects a frame because the request queue is
	// full; retry after the advertised back-off.
	StatusOverloaded byte = 2
	// StatusDraining rejects a frame because the server is shutting
	// down; the connection is closed after the response.
	StatusDraining byte = 3
	// StatusInternal reports an engine failure for an admitted request.
	StatusInternal byte = 4
	// StatusDeadlineExceeded answers an admitted request whose
	// per-request deadline passed before the engine could compute it.
	// The read is idempotent; the client may retry.
	StatusDeadlineExceeded byte = 5
)

// maxFrameFloats bounds a request frame's element count (guards the
// server against a hostile length prefix; generous above the largest
// real input dimension).
const maxFrameFloats = 1 << 20

// handleBinary speaks the framed protocol on one connection until the
// client closes it, a frame is malformed beyond recovery, a timeout
// fires, or drain pokes the idle read. Each frame is admitted through
// the same queue as HTTP requests.
//
// Timeout discipline (the binary slowloris defense): waiting for the
// next frame's first byte is bounded by IdleTimeout; once a frame has
// started, the rest of it must arrive within ReadTimeout — a client
// trickling one byte per minute cannot hold the handler hostage.
// Responses are bounded by WriteTimeout.
func (s *Server) handleBinary(c net.Conn) {
	s.connsMu.Lock()
	s.conns[c] = struct{}{}
	s.connsMu.Unlock()
	defer func() {
		s.connsMu.Lock()
		delete(s.conns, c)
		s.connsMu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		// Idle phase: wait (bounded) for the next frame to start.
		s.setReadDeadline(c, s.cfg.IdleTimeout)
		if _, err := br.Peek(1); err != nil {
			return // EOF, idle timeout, or the drain poke
		}
		// Frame phase: the whole frame must land within ReadTimeout.
		s.setReadDeadline(c, s.cfg.ReadTimeout)
		x, err := readRequestFrame(br, s.cfg.Inputs)
		if err != nil {
			if errors.Is(err, errBadFrame) {
				// Dimension/validity rejection: answer and keep the
				// connection — the framing itself is still in sync.
				c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				writeErrorFrame(bw, StatusBadRequest, 0, err.Error())
				bw.Flush()
				continue
			}
			return // torn frame, oversized header, or mid-frame stall
		}
		start := time.Now()
		cls, err := s.submit(x)
		c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		switch {
		case errors.Is(err, ErrQueueFull):
			writeErrorFrame(bw, StatusOverloaded, s.cfg.RetryAfter, err.Error())
		case errors.Is(err, ErrDraining):
			writeErrorFrame(bw, StatusDraining, s.cfg.RetryAfter, err.Error())
		case errors.Is(err, ErrDeadlineExceeded):
			writeErrorFrame(bw, StatusDeadlineExceeded, 0, err.Error())
		case err != nil:
			writeErrorFrame(bw, StatusInternal, 0, err.Error())
		default:
			writeOKFrame(bw, cls)
		}
		if ferr := bw.Flush(); ferr != nil {
			return
		}
		if err == nil {
			s.hBinary.RecordDuration(time.Since(start))
		}
		if errors.Is(err, ErrDraining) {
			return
		}
	}
}

// setReadDeadline arms a read deadline d from now, then re-checks the
// draining flag: Shutdown's wake-up poke (SetReadDeadline(now) on every
// registered connection) could land between our deadline write and the
// blocking read, and must not be overwritten by a longer deadline — the
// double-check closes that race, because Shutdown sets draining before
// poking.
func (s *Server) setReadDeadline(c net.Conn, d time.Duration) {
	c.SetReadDeadline(time.Now().Add(d))
	if s.draining.Load() {
		c.SetReadDeadline(time.Now())
	}
}

// errBadFrame marks an in-sync frame the server rejects (the
// connection survives); any other read error tears the connection.
var errBadFrame = errors.New("bad frame")

// readRequestFrame reads one [count][floats] frame and validates it
// against the expected input dimension. The max-frame guard runs
// before any payload allocation: a hostile length prefix above
// maxFrameFloats tears the connection without allocating, and a
// wrong-dimension (but sane) count streams its payload to discard —
// keeping the framing in sync for the in-sync rejection — so the
// server's allocation is always bounded by its own input dimension,
// never by a byte the client chose.
func readRequestFrame(r io.Reader, inputs int) ([]float64, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count == 0 || count > maxFrameFloats {
		// Hard reject, connection torn: a length prefix this far out of
		// range means the stream is garbage (or hostile), and consuming
		// gigabytes to "stay in sync" would be the attack succeeding.
		return nil, fmt.Errorf("serve: frame count %d out of range", count)
	}
	if int(count) != inputs {
		// In-sync rejection: drain the advertised payload to discard
		// (no allocation proportional to the hostile count), then
		// answer StatusBadRequest and keep the connection.
		if _, err := io.CopyN(io.Discard, r, 8*int64(count)); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: input length %d, want %d", errBadFrame, count, inputs)
	}
	buf := make([]byte, 8*int(count))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	x := make([]float64, count)
	for i := range x {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite value at %d", errBadFrame, i)
		}
		x[i] = v
	}
	return x, nil
}

// writeRequestFrame writes one input vector as a request frame.
func writeRequestFrame(w io.Writer, x []float64) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(x))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// writeOKFrame writes a StatusOK response frame.
func writeOKFrame(w io.Writer, cls Classification) error {
	var deg byte
	if cls.Degraded {
		deg = 1
	}
	if _, err := w.Write([]byte{StatusOK}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int32(cls.Class)); err != nil {
		return err
	}
	if _, err := w.Write([]byte{deg}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(cls.Scores))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(cls.Scores))
	for i, v := range cls.Scores {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// writeErrorFrame writes a non-OK response frame with the retry hint
// and message.
func writeErrorFrame(w io.Writer, status byte, retryAfter time.Duration, msg string) error {
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(retryAfter.Milliseconds())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(msg))); err != nil {
		return err
	}
	_, err := io.WriteString(w, msg)
	return err
}

// RemoteError is a non-OK binary response decoded by the client.
type RemoteError struct {
	// Status is the response frame's status byte.
	Status byte
	// RetryAfter is the server's suggested back-off (backpressure
	// statuses only).
	RetryAfter time.Duration
	// Msg is the server's message.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote status %d: %s", e.Status, e.Msg)
}

// Overloaded reports whether the error is a backpressure rejection
// (queue full or draining) the client should back off from.
func (e *RemoteError) Overloaded() bool {
	return e.Status == StatusOverloaded || e.Status == StatusDraining
}

// Timeout reports whether the error is the server's typed deadline
// answer: the request was admitted but its deadline passed before the
// engine computed it. The read is idempotent, so retrying is safe.
func (e *RemoteError) Timeout() bool { return e.Status == StatusDeadlineExceeded }

// BinaryClient is a client for the binary hot path: one connection,
// synchronous request/response. It is not safe for concurrent use;
// open one per goroutine (that is also what feeds the server's
// micro-batcher).
type BinaryClient struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// DialBinary connects to a serve listener and performs the magic
// handshake.
func DialBinary(addr string, timeout time.Duration) (*BinaryClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(Magic[:]); err != nil {
		conn.Close()
		return nil, err
	}
	return &BinaryClient{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// SetTimeout bounds every subsequent Classify round-trip: the request
// write and the response read must both complete within d of the call
// starting. Zero (the default) leaves the round-trip unbounded.
func (c *BinaryClient) SetTimeout(d time.Duration) { c.timeout = d }

// Classify sends one input vector and decodes the response. A non-OK
// status is returned as *RemoteError; transport failures as-is.
func (c *BinaryClient) Classify(x []float64) (Classification, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := writeRequestFrame(c.w, x); err != nil {
		return Classification{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Classification{}, err
	}
	return readResponseFrame(c.r)
}

// Close closes the connection.
func (c *BinaryClient) Close() error { return c.conn.Close() }

// readResponseFrame decodes one response frame.
func readResponseFrame(r io.Reader) (Classification, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return Classification{}, err
	}
	if status[0] != StatusOK {
		var retryMs, msgLen uint32
		if err := binary.Read(r, binary.LittleEndian, &retryMs); err != nil {
			return Classification{}, err
		}
		if err := binary.Read(r, binary.LittleEndian, &msgLen); err != nil {
			return Classification{}, err
		}
		if msgLen > 1<<16 {
			return Classification{}, errors.New("serve: oversized error message")
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(r, msg); err != nil {
			return Classification{}, err
		}
		return Classification{}, &RemoteError{
			Status:     status[0],
			RetryAfter: time.Duration(retryMs) * time.Millisecond,
			Msg:        string(msg),
		}
	}
	var cls int32
	if err := binary.Read(r, binary.LittleEndian, &cls); err != nil {
		return Classification{}, err
	}
	var deg [1]byte
	if _, err := io.ReadFull(r, deg[:]); err != nil {
		return Classification{}, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return Classification{}, err
	}
	if n > maxFrameFloats {
		return Classification{}, errors.New("serve: oversized score vector")
	}
	buf := make([]byte, 8*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return Classification{}, err
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return Classification{Class: int(cls), Scores: scores, Degraded: deg[0] == 1}, nil
}
