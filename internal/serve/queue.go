package serve

import (
	"time"

	"vortex/internal/obs"
)

// request is one admitted classification read waiting in the queue.
// resp is buffered (capacity 1) so a batcher worker never blocks on a
// client that walked away.
type request struct {
	x    []float64
	resp chan response
}

// response is the worker's answer to one request: the classification or
// the engine error that failed its batch.
type response struct {
	cls Classification
	err error
}

// enqueue admits r to the bounded queue without blocking. A full queue
// returns ErrQueueFull and a draining server ErrDraining; on success
// the request is counted in-flight and is guaranteed an answer.
func (s *Server) enqueue(r *request) error {
	// Order matters for the drain race: the in-flight Add happens
	// before the draining check, so a request admitted concurrently
	// with Shutdown is either rejected here (Add undone) or visible to
	// the drain's Wait.
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		s.rejectedDrn.Add(1)
		s.cRejDrain.Inc()
		return ErrDraining
	}
	select {
	case s.queue <- r:
		s.accepted.Add(1)
		s.cAccepted.Inc()
		s.gQueue.Set(float64(len(s.queue)))
		return nil
	default:
		s.inflight.Done()
		s.rejectedFull.Add(1)
		s.cRejFull.Inc()
		return ErrQueueFull
	}
}

// worker is one batcher goroutine: it pulls the next request, lingers
// briefly for more (up to BatchMax), and routes the micro-batch into
// the engine's ReadBatch in one call. Workers keep running through a
// drain — they are what flushes the queue — and exit only when the
// drain has emptied it and closed stopWorkers.
func (s *Server) worker() {
	defer s.workersDone.Done()
	batch := make([]*request, 0, s.cfg.BatchMax)
	xs := make([][]float64, 0, s.cfg.BatchMax)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case r := <-s.queue:
			batch = append(batch[:0], r)
			s.fill(&batch, timer)
			s.runBatch(batch, xs[:0])
		case <-s.stopWorkers:
			return
		}
	}
}

// fill grows a started batch up to BatchMax: first by draining whatever
// is already queued without blocking, then — when a linger is
// configured — by waiting up to BatchLinger for stragglers. The linger
// is what coalesces concurrent connections into one ReadBatch.
func (s *Server) fill(batch *[]*request, timer *time.Timer) {
	for len(*batch) < s.cfg.BatchMax {
		select {
		case r := <-s.queue:
			*batch = append(*batch, r)
			continue
		default:
		}
		break
	}
	if s.cfg.BatchLinger <= 0 || len(*batch) >= s.cfg.BatchMax {
		return
	}
	timer.Reset(s.cfg.BatchLinger)
	for len(*batch) < s.cfg.BatchMax {
		select {
		case r := <-s.queue:
			*batch = append(*batch, r)
		case <-timer.C:
			return
		}
	}
	if !timer.Stop() {
		<-timer.C
	}
}

// runBatch routes one micro-batch into the engine and fans the answers
// back out to the waiting requests. An engine error fails every request
// in the batch — the fleet router already exhausted failover before
// reporting it.
func (s *Server) runBatch(batch []*request, xs [][]float64) {
	span := obs.StartSpan("serve.batch", "size", len(batch))
	for _, r := range batch {
		xs = append(xs, r.x)
	}
	res, err := s.cfg.Engine.ReadBatch(xs)
	for i, r := range batch {
		if err != nil {
			r.resp <- response{err: err}
			s.failed.Add(1)
			s.cFailed.Inc()
		} else {
			r.resp <- response{cls: Classification{
				Class:    res.Classes[i],
				Scores:   res.Scores[i],
				Member:   res.Member,
				Degraded: res.Degraded,
			}}
			s.served.Add(1)
			s.cServed.Inc()
		}
		s.inflight.Done()
	}
	s.hBatch.Record(float64(len(batch)))
	s.gQueue.Set(float64(len(s.queue)))
	span.End()
}
