package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vortex/internal/fleet"
	"vortex/internal/obs"
)

// request is one admitted classification read waiting in the queue.
// resp is buffered (capacity 1) so a batcher worker never blocks on a
// client that walked away. deadline is the request's admission-stamped
// service deadline (zero when RequestTimeout is disabled): once it
// passes, the request is answered with ErrDeadlineExceeded instead of
// being computed.
type request struct {
	x        []float64
	resp     chan response
	deadline time.Time
}

// response is the worker's answer to one request: the classification or
// the typed error (engine failure or blown deadline) that ends it.
type response struct {
	cls Classification
	err error
}

// enqueue admits r to the bounded queue without blocking, stamping the
// request deadline. A full queue returns ErrQueueFull and a draining
// server ErrDraining; on success the request is counted in-flight and
// is guaranteed an answer (possibly the typed deadline error).
func (s *Server) enqueue(r *request) error {
	// Order matters for the drain race: the in-flight Add happens
	// before the draining check, so a request admitted concurrently
	// with Shutdown is either rejected here (Add undone) or visible to
	// the drain's Wait.
	s.inflight.Add(1)
	if s.draining.Load() {
		s.inflight.Done()
		s.rejectedDrn.Add(1)
		s.cRejDrain.Inc()
		return ErrDraining
	}
	if s.cfg.RequestTimeout > 0 {
		r.deadline = time.Now().Add(s.cfg.RequestTimeout)
	}
	select {
	case s.queue <- r:
		s.accepted.Add(1)
		s.cAccepted.Inc()
		s.gQueue.Set(float64(len(s.queue)))
		return nil
	default:
		s.inflight.Done()
		s.rejectedFull.Add(1)
		s.cRejFull.Inc()
		return ErrQueueFull
	}
}

// worker is one batcher goroutine: it pulls the next request, lingers
// briefly for more (up to BatchMax), and routes the micro-batch into
// the engine's ReadBatch in one call. Workers keep running through a
// drain — they are what flushes the queue — and exit only when the
// drain has emptied it and closed stopWorkers.
func (s *Server) worker() {
	defer s.workersDone.Done()
	batch := make([]*request, 0, s.cfg.BatchMax)
	xs := make([][]float64, 0, s.cfg.BatchMax)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case r := <-s.queue:
			batch = append(batch[:0], r)
			s.fill(&batch, timer)
			s.runBatch(batch, xs[:0])
		case <-s.stopWorkers:
			return
		}
	}
}

// fill grows a started batch up to BatchMax: first by draining whatever
// is already queued without blocking, then — when a linger is
// configured — by waiting up to BatchLinger for stragglers. The linger
// is what coalesces concurrent connections into one ReadBatch.
func (s *Server) fill(batch *[]*request, timer *time.Timer) {
	for len(*batch) < s.cfg.BatchMax {
		select {
		case r := <-s.queue:
			*batch = append(*batch, r)
			continue
		default:
		}
		break
	}
	if s.cfg.BatchLinger <= 0 || len(*batch) >= s.cfg.BatchMax {
		return
	}
	timer.Reset(s.cfg.BatchLinger)
	for len(*batch) < s.cfg.BatchMax {
		select {
		case r := <-s.queue:
			*batch = append(*batch, r)
		case <-timer.C:
			return
		}
	}
	if !timer.Stop() {
		<-timer.C
	}
}

// runBatch routes one micro-batch into the engine and fans the answers
// back out to the waiting requests. Deadline propagation happens here:
// requests whose deadline already passed are answered with the typed
// timeout without touching the engine, and the surviving batch hands
// the engine a context bounded by its latest deadline. An engine error
// fails every surviving request in the batch — the fleet router already
// exhausted failover before reporting it.
func (s *Server) runBatch(batch []*request, xs [][]float64) {
	span := obs.StartSpan("serve.batch", "size", len(batch))
	defer span.End()
	// Shed the already-dead: a request that blew its deadline in the
	// queue is answered, not computed.
	now := time.Now()
	live := batch[:0]
	var latest time.Time
	bounded := true
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			s.answerTimeout(r)
			continue
		}
		live = append(live, r)
		if r.deadline.IsZero() {
			bounded = false
		} else if r.deadline.After(latest) {
			latest = r.deadline
		}
	}
	if len(live) == 0 {
		s.gQueue.Set(float64(len(s.queue)))
		return
	}
	for _, r := range live {
		xs = append(xs, r.x)
	}
	ctx := context.Background()
	if bounded {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, latest)
		defer cancel()
	}
	res, err := s.readBatch(ctx, xs)
	for i, r := range live {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.answerTimeout(r)
			continue
		case err != nil:
			r.resp <- response{err: err}
			s.failed.Add(1)
			s.cFailed.Inc()
		default:
			if res.Degraded {
				s.cDegraded.Inc()
			}
			r.resp <- response{cls: Classification{
				Class:    res.Classes[i],
				Scores:   res.Scores[i],
				Member:   res.Member,
				Degraded: res.Degraded,
			}}
			s.served.Add(1)
			s.cServed.Inc()
		}
		s.inflight.Done()
	}
	s.hBatch.Record(float64(len(live)))
	s.gQueue.Set(float64(len(s.queue)))
}

// readBatch routes one micro-batch into the engine — through the
// context-aware path when the engine supports it — with the worker's
// panic firewall: an engine panic becomes an error answer for the
// batch, never a dead batcher goroutine (which would strand every
// queued request and break the admitted⇒answered contract).
func (s *Server) readBatch(ctx context.Context, xs [][]float64) (res fleet.BatchResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.cWorkerPanics.Inc()
			obs.RecordEvent("panic", "serve.worker", "recovered", p)
			err = fmt.Errorf("serve: engine panic: %v", p)
		}
	}()
	if ce, ok := s.cfg.Engine.(CtxEngine); ok {
		return ce.ReadBatchCtx(ctx, xs)
	}
	return s.cfg.Engine.ReadBatch(xs)
}

// answerTimeout answers one admitted request with the typed deadline
// error and accounts it (TimedOut, serve.deadline_exceeded).
func (s *Server) answerTimeout(r *request) {
	r.resp <- response{err: ErrDeadlineExceeded}
	s.timedOut.Add(1)
	s.cDeadline.Inc()
	s.inflight.Done()
}
