package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vortex/internal/fleet"
)

// slowEngine adds a fixed per-batch service time to stubEngine so a
// drain reliably begins with requests in flight.
type slowEngine struct {
	stubEngine
	delay time.Duration
}

func (e *slowEngine) ReadBatch(xs [][]float64) (fleet.BatchResult, error) {
	time.Sleep(e.delay)
	return e.stubEngine.ReadBatch(xs)
}

// TestDrainUnderLoadZeroLoss is the drain e2e: JSON and binary clients
// hammer the server, Shutdown fires mid-stream, and afterwards every
// admitted request must have been answered — accepted == served, zero
// failures, and the clients saw exactly as many answers as the server
// claims to have served.
func TestDrainUnderLoadZeroLoss(t *testing.T) {
	eng := &slowEngine{delay: 2 * time.Millisecond}
	s, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, QueueDepth: 64, Workers: 2, BatchMax: 8,
		BatchLinger: time.Millisecond,
	})

	var (
		answered atomic.Int64 // OK responses observed by clients
		rejected atomic.Int64 // backpressure/draining rejections observed
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	jsonClient := func(id int) {
		defer wg.Done()
		client := &http.Client{}
		for i := 0; !stop.Load(); i++ {
			raw, _ := json.Marshal(ClassifyRequest{Input: testInput(id*31 + i)})
			resp, err := client.Post("http://"+addr+"/v1/classify", "application/json", bytes.NewReader(raw))
			if err != nil {
				return // listener closed under us: the request was never admitted
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				answered.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
			case http.StatusServiceUnavailable:
				rejected.Add(1)
				return // draining: the server is going away
			default:
				t.Errorf("json client %d: unexpected status %d", id, resp.StatusCode)
				return
			}
		}
	}
	binClient := func(id int) {
		defer wg.Done()
		c, err := DialBinary(addr, 5*time.Second)
		if err != nil {
			t.Errorf("bin client %d: %v", id, err)
			return
		}
		defer c.Close()
		for i := 0; !stop.Load(); i++ {
			_, err := c.Classify(testInput(id*17 + i))
			if err == nil {
				answered.Add(1)
				continue
			}
			var re *RemoteError
			if errors.As(err, &re) {
				rejected.Add(1)
				if re.Status == StatusDraining {
					return
				}
				continue
			}
			return // transport error: the drain poke tore the idle read
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go jsonClient(i)
		go binClient(i)
	}

	// Let traffic build, then drain mid-stream.
	waitFor(t, 10*time.Second, func() bool { return s.Stats().Accepted > 20 })
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := s.Shutdown(ctx)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("drain under load: %v", err)
	}

	st := s.Stats()
	if st.Failed != 0 {
		t.Errorf("drain failed %d admitted requests", st.Failed)
	}
	if st.Accepted != st.Served {
		t.Errorf("accepted %d != served %d: drain dropped admitted requests", st.Accepted, st.Served)
	}
	if got := answered.Load(); got != st.Served {
		t.Errorf("clients saw %d answers, server served %d", got, st.Served)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth %d after drain, want 0", st.QueueDepth)
	}
	t.Logf("drained with %d served, %d rejected observed by clients", st.Served, rejected.Load())
}

// TestSubmitAfterDrain checks the post-drain admission contract: new
// work is refused with ErrDraining and counted, and a second Shutdown
// is an error.
func TestSubmitAfterDrain(t *testing.T) {
	eng := &stubEngine{}
	s, _ := startServer(t, Config{Inputs: 4, Engine: eng})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if _, err := s.submit(testInput(0)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit error %v, want ErrDraining", err)
	}
	if st := s.Stats(); st.RejectedDraining != 1 || !st.Draining {
		t.Errorf("post-drain stats %+v", st)
	}
	if err := s.Shutdown(ctx); err == nil {
		t.Error("second Shutdown accepted")
	}
}

// TestBinaryBadFrameRecovery checks that an in-sync rejected frame
// (wrong dimension, non-finite values) answers StatusBadRequest and
// leaves the connection usable for the next request.
func TestBinaryBadFrameRecovery(t *testing.T) {
	eng := &stubEngine{}
	_, addr := startServer(t, Config{Inputs: 4, Engine: eng})
	c, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var re *RemoteError
	if _, err := c.Classify(make([]float64, 7)); !errors.As(err, &re) || re.Status != StatusBadRequest {
		t.Fatalf("wrong dimension: got %v, want StatusBadRequest", err)
	}
	bad := testInput(0)
	bad[1] = math.NaN()
	if _, err := c.Classify(bad); !errors.As(err, &re) || re.Status != StatusBadRequest {
		t.Fatalf("NaN input: got %v, want StatusBadRequest", err)
	}
	cls, err := c.Classify(testInput(5))
	if err != nil {
		t.Fatalf("connection did not survive bad frames: %v", err)
	}
	if want := argmax(stubScores(testInput(5))); cls.Class != want {
		t.Errorf("post-recovery class %d, want %d", cls.Class, want)
	}
	if eng.calls.Load() != 1 {
		t.Errorf("engine saw %d batches, want 1 (bad frames must not reach it)", eng.calls.Load())
	}
}

// TestProtocolParity sends the same inputs over the binary hot path and
// HTTP/JSON and requires identical classifications.
func TestProtocolParity(t *testing.T) {
	eng := &stubEngine{}
	_, addr := startServer(t, Config{Inputs: 4, Engine: eng})
	c, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 6; i++ {
		x := testInput(i)
		bin, err := c.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postClassify(t, addr, ClassifyRequest{Input: x})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("json status %d: %s", resp.StatusCode, body)
		}
		var cr ClassifyResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if bin.Class != cr.Result.Class {
			t.Errorf("input %d: binary class %d != json class %d", i, bin.Class, cr.Result.Class)
		}
		if bin.Degraded != cr.Result.Degraded {
			t.Errorf("input %d: degraded flag disagrees", i)
		}
		if len(bin.Scores) != len(cr.Result.Scores) {
			t.Fatalf("input %d: score lengths %d vs %d", i, len(bin.Scores), len(cr.Result.Scores))
		}
		for j := range bin.Scores {
			if bin.Scores[j] != cr.Result.Scores[j] {
				t.Errorf("input %d: score[%d] %g (binary) != %g (json)", i, j, bin.Scores[j], cr.Result.Scores[j])
			}
		}
	}
}
