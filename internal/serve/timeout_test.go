package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vortex/internal/fleet"
)

// slowCtxEngine is a CtxEngine that never answers: it blocks until the
// batch context dies and reports its error, the way a fleet read
// abandoned between failover hops does.
type slowCtxEngine struct {
	stubEngine
}

func (e *slowCtxEngine) ReadBatchCtx(ctx context.Context, xs [][]float64) (fleet.BatchResult, error) {
	e.calls.Add(1)
	<-ctx.Done()
	return fleet.BatchResult{}, fmt.Errorf("slow engine: %w", ctx.Err())
}

// panicEngine panics inside ReadBatch while armed — the worker's panic
// firewall must turn that into an error answer, not a dead batcher.
type panicEngine struct {
	stubEngine
	boom atomic.Bool
}

func (e *panicEngine) ReadBatch(xs [][]float64) (fleet.BatchResult, error) {
	if e.boom.Load() {
		panic("kaboom")
	}
	return e.stubEngine.ReadBatch(xs)
}

// TestRequestTimeoutHTTP pins queue-side deadline shedding: a request
// that outwaits RequestTimeout in the queue is answered 504 without
// touching the engine, and lands in Stats.TimedOut.
func TestRequestTimeoutHTTP(t *testing.T) {
	eng := &stubEngine{gate: make(chan struct{})}
	s, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, Workers: 1, BatchMax: 1, BatchLinger: -1,
		RequestTimeout: 50 * time.Millisecond,
	})

	// A occupies the sole worker inside the gated engine; its own shed
	// check already passed, so it is served when the gate opens.
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postClassify(t, addr, ClassifyRequest{Input: testInput(1)})
		aDone <- resp.StatusCode
	}()
	waitFor(t, 5*time.Second, func() bool { return eng.calls.Load() >= 1 })

	// B sits in the queue past its deadline.
	bDone := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		resp, body := postClassify(t, addr, ClassifyRequest{Input: testInput(2)})
		bDone <- struct {
			code int
			body string
		}{resp.StatusCode, string(body)}
	}()
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Accepted >= 2 })
	time.Sleep(80 * time.Millisecond) // let B's 50ms deadline expire
	close(eng.gate)

	if code := <-aDone; code != http.StatusOK {
		t.Errorf("in-engine request got %d, want 200", code)
	}
	b := <-bDone
	if b.code != http.StatusGatewayTimeout {
		t.Fatalf("expired request got %d (%s), want 504", b.code, b.body)
	}
	if !strings.Contains(b.body, "deadline") {
		t.Errorf("504 body %q does not name the deadline", b.body)
	}
	st := s.Stats()
	if st.TimedOut != 1 || st.Served != 1 {
		t.Errorf("stats timed_out=%d served=%d, want 1/1", st.TimedOut, st.Served)
	}
	if st.Accepted != st.Served+st.Failed+st.TimedOut {
		t.Errorf("accounting broken: %+v", st)
	}
}

// TestRequestTimeoutBinary is the binary-protocol face of the same
// shed: the typed answer is StatusDeadlineExceeded and the client's
// RemoteError reports Timeout().
func TestRequestTimeoutBinary(t *testing.T) {
	eng := &stubEngine{gate: make(chan struct{})}
	s, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, Workers: 1, BatchMax: 1, BatchLinger: -1,
		RequestTimeout: 50 * time.Millisecond,
	})
	blocker, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	go blocker.Classify(testInput(1))
	waitFor(t, 5*time.Second, func() bool { return eng.calls.Load() >= 1 })

	victim, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	vDone := make(chan error, 1)
	go func() {
		_, err := victim.Classify(testInput(2))
		vDone <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Accepted >= 2 })
	time.Sleep(80 * time.Millisecond)
	close(eng.gate)

	verr := <-vDone
	var rerr *RemoteError
	if !errors.As(verr, &rerr) || rerr.Status != StatusDeadlineExceeded {
		t.Fatalf("victim err = %v, want RemoteError status %d", verr, StatusDeadlineExceeded)
	}
	if !rerr.Timeout() {
		t.Error("RemoteError.Timeout() = false for a deadline answer")
	}
	// The typed answer keeps the connection in sync: the same conn
	// serves a normal request afterwards.
	if _, err := victim.Classify(testInput(3)); err != nil {
		t.Errorf("conn dead after typed timeout: %v", err)
	}
}

// TestCtxEngineDeadline pins in-engine deadline propagation: a
// CtxEngine that blocks sees its batch context expire at the latest
// request deadline, and the requests get the typed timeout.
func TestCtxEngineDeadline(t *testing.T) {
	eng := &slowCtxEngine{}
	s, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, Workers: 1, BatchMax: 1, BatchLinger: -1,
		RequestTimeout: 50 * time.Millisecond,
	})
	start := time.Now()
	resp, body := postClassify(t, addr, ClassifyRequest{Input: testInput(1)})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("typed timeout took %v; context never fired", el)
	}
	if eng.calls.Load() != 1 {
		t.Errorf("engine calls %d, want 1 (the context-aware path)", eng.calls.Load())
	}
	if st := s.Stats(); st.TimedOut != 1 {
		t.Errorf("timed_out %d, want 1", st.TimedOut)
	}
}

// TestFrameGuardTearsConn pins the max-frame defense: a hostile length
// prefix kills the connection without a response (and without the
// server allocating the advertised payload).
func TestFrameGuardTearsConn(t *testing.T) {
	eng := &stubEngine{}
	_, addr := startServer(t, Config{Inputs: 4, Engine: eng})
	for _, count := range []uint32{0, maxFrameFloats + 1, 0xffffffff} {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(Magic[:])
		binary.Write(c, binary.LittleEndian, count)
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Errorf("count %d: server answered a hostile frame instead of tearing the conn", count)
		}
		c.Close()
	}
	if eng.calls.Load() != 0 {
		t.Errorf("hostile frames reached the engine %d times", eng.calls.Load())
	}
}

// TestWrongDimensionKeepsConn pins the in-sync rejection: a sane but
// wrong-dimension frame gets StatusBadRequest and the connection
// survives for the next (valid) frame.
func TestWrongDimensionKeepsConn(t *testing.T) {
	_, addr := startServer(t, Config{Inputs: 4, Engine: &stubEngine{}})
	c, err := DialBinary(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Classify(make([]float64, 7))
	var rerr *RemoteError
	if !errors.As(err, &rerr) || rerr.Status != StatusBadRequest {
		t.Fatalf("wrong dimension: err = %v, want RemoteError status %d", err, StatusBadRequest)
	}
	if _, err := c.Classify(testInput(1)); err != nil {
		t.Fatalf("conn dead after in-sync rejection: %v", err)
	}
}

// TestSlowlorisTimeouts pins the binary read deadlines: an idle conn
// dies at IdleTimeout, and a trickled frame dies at ReadTimeout.
func TestSlowlorisTimeouts(t *testing.T) {
	_, addr := startServer(t, Config{
		Inputs: 4, Engine: &stubEngine{},
		ReadTimeout: 80 * time.Millisecond, IdleTimeout: 80 * time.Millisecond,
	})
	t.Run("idle", func(t *testing.T) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Write(Magic[:]) // then say nothing
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Error("idle connection survived past IdleTimeout")
		}
	})
	t.Run("mid-frame", func(t *testing.T) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Write(Magic[:])
		c.Write([]byte{4, 0}) // half a length prefix, then stall
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Error("trickled frame survived past ReadTimeout")
		}
	})
}

// TestEnginePanicIsolated pins the worker panic firewall: an engine
// panic answers the batch with an error and the server keeps serving.
func TestEnginePanicIsolated(t *testing.T) {
	eng := &panicEngine{}
	eng.boom.Store(true)
	s, addr := startServer(t, Config{Inputs: 4, Engine: eng, Workers: 1})

	resp, body := postClassify(t, addr, ClassifyRequest{Input: testInput(1)})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Errorf("500 body %q does not name the panic", body)
	}

	// The batcher survived: disarm and serve normally on the same server.
	eng.boom.Store(false)
	resp, body = postClassify(t, addr, ClassifyRequest{Input: testInput(2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status %d (%s), want 200", resp.StatusCode, body)
	}
	st := s.Stats()
	if st.Failed != 1 || st.Served != 1 {
		t.Errorf("stats failed=%d served=%d, want 1/1", st.Failed, st.Served)
	}
	if st.Accepted != st.Served+st.Failed+st.TimedOut {
		t.Errorf("accounting broken after panic: %+v", st)
	}
}
