package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEnqueueZeroCapacity pins the non-blocking admission contract on
// the degenerate queue: with no buffered slot and no receiver ready,
// enqueue must reject immediately (never block), and with a receiver
// parked on the channel the rendezvous succeeds.
func TestEnqueueZeroCapacity(t *testing.T) {
	s, err := New(Config{Inputs: 4, Engine: &stubEngine{}})
	if err != nil {
		t.Fatal(err)
	}
	// No workers are running (Serve was never called); swap in an
	// unbuffered queue to model capacity zero.
	s.queue = make(chan *request)

	r := &request{x: testInput(1), resp: make(chan response, 1)}
	if err := s.enqueue(r); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue into receiverless unbuffered queue: %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.RejectedQueueFull != 1 || st.Accepted != 0 {
		t.Fatalf("stats after reject: %+v", st)
	}

	// Park a receiver, then the zero-capacity rendezvous admits.
	got := make(chan *request, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		got <- <-s.queue
	}()
	<-ready
	admitted := false
	for i := 0; i < 500 && !admitted; i++ {
		// The receiver's park is asynchronous; retry until the
		// rendezvous lands (bounded, typically first iteration).
		admitted = s.enqueue(r) == nil
		if !admitted {
			time.Sleep(time.Millisecond)
		}
	}
	if !admitted {
		t.Fatal("enqueue never admitted with a parked receiver")
	}
	select {
	case q := <-got:
		if q != r {
			t.Fatal("receiver got a different request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never saw the admitted request")
	}
	s.inflight.Done() // stand in for the worker's answer
}

// TestConcurrentSubmitRacingShutdown hammers admission from many
// goroutines while Shutdown lands mid-storm, then checks the books:
// every attempt is exactly one of answered / rejected-draining /
// rejected-full, and every admitted request was answered.
func TestConcurrentSubmitRacingShutdown(t *testing.T) {
	eng := &stubEngine{}
	s, err := New(Config{Inputs: 4, Engine: eng, QueueDepth: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	const n = 64
	var wg sync.WaitGroup
	var answered, draining, full atomic.Int64
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, err := s.submit(testInput(i))
			switch {
			case err == nil:
				answered.Add(1)
			case errors.Is(err, ErrDraining):
				draining.Add(1)
			case errors.Is(err, ErrQueueFull):
				full.Add(1)
			default:
				t.Errorf("submit %d: unexpected error %v", i, err)
			}
		}(i)
	}
	close(start)
	time.Sleep(time.Millisecond) // let some submissions land first
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	st := s.Stats()
	if got := answered.Load() + draining.Load() + full.Load(); got != n {
		t.Fatalf("%d attempts accounted, want %d", got, n)
	}
	if st.Accepted != answered.Load() {
		t.Errorf("accepted %d != answered %d: an admitted request was lost or dropped", st.Accepted, answered.Load())
	}
	if st.RejectedDraining != draining.Load() || st.RejectedQueueFull != full.Load() {
		t.Errorf("rejection stats %+v vs observed draining=%d full=%d", st, draining.Load(), full.Load())
	}
	if st.Accepted != st.Served+st.Failed+st.TimedOut {
		t.Errorf("accounting broken: %+v", st)
	}
}

// TestPartialAdmitAccounting pins the HTTP batch partial-admission
// path under queue contention: when admission fails midway through a
// batch, the already-admitted vectors are still answered (never
// abandoned) and the whole request reports the rejection — so the
// books stay balanced.
func TestPartialAdmitAccounting(t *testing.T) {
	// QueueDepth 3 with two fillers parked leaves exactly one free slot:
	// the 4-vector batch admits its first vector, then hits the wall.
	eng := &stubEngine{gate: make(chan struct{})}
	s, addr := startServer(t, Config{
		Inputs: 4, Engine: eng, QueueDepth: 3, Workers: 1, BatchMax: 4, BatchLinger: -1,
	})

	// Fill: one request inside the gated engine, then two parked in the
	// queue — sequenced so no filler ever races another for the last
	// slot.
	var fillWg sync.WaitGroup
	filler := func(i int) {
		defer fillWg.Done()
		if _, err := s.submit(testInput(i)); err != nil {
			t.Errorf("filler %d: %v", i, err)
		}
	}
	fillWg.Add(1)
	go filler(0)
	waitFor(t, 5*time.Second, func() bool { return eng.calls.Load() >= 1 })
	for i := 1; i <= 2; i++ {
		fillWg.Add(1)
		go filler(i)
	}
	waitFor(t, 5*time.Second, func() bool { return s.Stats().QueueDepth == 2 })

	// The 4-vector batch admits exactly one vector before the queue
	// fills. The admitted vector must be awaited and served; the
	// response must be the 429.
	respCh := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(ClassifyRequest{Inputs: [][]float64{
			testInput(4), testInput(5), testInput(6), testInput(7)}})
		resp, err := http.Post("http://"+addr+"/v1/classify", "application/json",
			bytes.NewReader(raw))
		if err != nil {
			t.Error(err)
			respCh <- 0
			return
		}
		resp.Body.Close()
		respCh <- resp.StatusCode
	}()
	// The batch request is fully resolved (rejected) only after its
	// admitted prefix is answered — open the gate so everything drains.
	time.Sleep(10 * time.Millisecond)
	close(eng.gate)
	if code := <-respCh; code != http.StatusTooManyRequests {
		t.Fatalf("partially-admitted batch got %d, want 429", code)
	}
	fillWg.Wait()

	st := s.Stats()
	if st.RejectedQueueFull == 0 {
		t.Error("no queue-full rejection recorded")
	}
	if st.Accepted != 4 {
		t.Errorf("accepted %d, want 4 (three fillers + the batch's admitted prefix)", st.Accepted)
	}
	if st.Accepted != st.Served+st.Failed+st.TimedOut {
		t.Errorf("admitted prefix abandoned: %+v", st)
	}
}
