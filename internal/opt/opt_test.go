package opt

import (
	"math"
	"testing"
	"testing/quick"

	"vortex/internal/mat"
	"vortex/internal/rng"
	"vortex/internal/stats"
)

// separableProblem builds a linearly separable 2-class problem.
func separableProblem(seed uint64, s, n int) (x *mat.Matrix, y []float64, wTrue []float64) {
	src := rng.New(seed)
	wTrue = src.NormVec(nil, n, 1)
	x = mat.NewMatrix(s, n)
	y = make([]float64, s)
	for i := 0; i < s; i++ {
		row := x.Row(i)
		for {
			for q := range row {
				row[q] = src.Float64()
			}
			m := mat.Dot(row, wTrue)
			if math.Abs(m) > 0.8 { // keep a margin
				if m > 0 {
					y[i] = 1
				} else {
					y[i] = -1
				}
				break
			}
		}
	}
	return
}

func TestValidate(t *testing.T) {
	x := mat.NewMatrix(2, 2)
	good := Problem{X: x, Y: []float64{1, -1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Problem{
		{X: nil, Y: nil},
		{X: x, Y: []float64{1}},
		{X: x, Y: []float64{1, 0.5}},
		{X: x, Y: []float64{1, -1}, Gamma: 2},
		{X: x, Y: []float64{1, -1}, Gamma: -0.1},
		{X: x, Y: []float64{1, -1}, Rho: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTrainColumnSeparable(t *testing.T) {
	x, y, _ := separableProblem(3, 400, 20)
	p := Problem{X: x, Y: y}
	w, err := TrainColumn(p, SGDConfig{Epochs: 200, Rate: 0.1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Count training errors.
	wrong := 0
	for i := 0; i < x.Rows; i++ {
		if y[i]*mat.Dot(x.Row(i), w) <= 0 {
			wrong++
		}
	}
	// The box constraint caps the attainable margin below the hinge's
	// target of 1, so a few thin-margin samples may stay misclassified;
	// demand near-separation rather than perfection.
	if frac := float64(wrong) / float64(x.Rows); frac > 0.04 {
		t.Fatalf("separable problem misclassified %.1f%%", 100*frac)
	}
}

func TestTrainColumnDeterministic(t *testing.T) {
	x, y, _ := separableProblem(5, 100, 10)
	p := Problem{X: x, Y: y, Gamma: 0.3, Rho: 2}
	w1, err := TrainColumn(p, SGDConfig{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := TrainColumn(p, SGDConfig{}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestWeightsRespectBox(t *testing.T) {
	x, y, _ := separableProblem(7, 200, 8)
	p := Problem{X: x, Y: y}
	w, err := TrainColumn(p, SGDConfig{WMax: 0.25, Epochs: 100, Rate: 0.5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w {
		if math.Abs(v) > 0.25+1e-12 {
			t.Fatalf("weight %v escaped the box", v)
		}
	}
}

func TestSampleLossProperties(t *testing.T) {
	// Loss is non-negative and zero for strongly satisfied samples.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(10)
		w := src.NormVec(nil, n, 1)
		x := src.NormVec(nil, n, 1)
		l := SampleLoss(w, x, 1, 0.2, 1.5)
		return l >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Exactly computable case.
	w := []float64{1, 0}
	x := []float64{2, 0}
	// margin = 2, pen = gamma*rho*|2| = 0.5*1*2 = 1, loss = 1+1-2 = 0.
	if l := SampleLoss(w, x, 1, 0.5, 1); l != 0 {
		t.Fatalf("loss = %v, want 0", l)
	}
	// y = -1 flips the margin: loss = 1+1+2 = 4.
	if l := SampleLoss(w, x, -1, 0.5, 1); l != 4 {
		t.Fatalf("loss = %v, want 4", l)
	}
}

func TestPenaltyMonotoneInGamma(t *testing.T) {
	// For fixed w, the mean loss is non-decreasing in gamma.
	x, y, _ := separableProblem(11, 50, 6)
	src := rng.New(4)
	w := src.NormVec(nil, 6, 1)
	prev := -1.0
	for _, gamma := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		l := MeanLoss(Problem{X: x, Y: y, Gamma: gamma, Rho: 3}, w)
		if l < prev {
			t.Fatalf("mean loss decreased with gamma: %v -> %v", prev, l)
		}
		prev = l
	}
}

func TestVATShrinksWeightedNorm(t *testing.T) {
	// Training with a large penalty must reduce the workload-weighted
	// 2-norm ||x o w|| relative to conventional training — that is the
	// mechanism by which VAT buys variation tolerance.
	x, y, _ := separableProblem(13, 300, 15)
	wConv, err := TrainColumn(Problem{X: x, Y: y}, SGDConfig{Epochs: 120}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	wVAT, err := TrainColumn(Problem{X: x, Y: y, Gamma: 0.8, Rho: 4}, SGDConfig{Epochs: 120}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var nConv, nVAT float64
	for i := 0; i < x.Rows; i++ {
		nConv += mat.Norm2(mat.HadamardVec(x.Row(i), wConv))
		nVAT += mat.Norm2(mat.HadamardVec(x.Row(i), wVAT))
	}
	if nVAT >= nConv {
		t.Fatalf("VAT weighted norm %v not below conventional %v", nVAT, nConv)
	}
}

func TestVATImprovesRobustnessUnderVariation(t *testing.T) {
	// End-to-end sanity of the paper's core claim at the optimizer level:
	// under multiplicative lognormal weight corruption, VAT-trained
	// weights classify better than conventionally trained ones.
	x, y, _ := separableProblem(17, 500, 30)
	sigma := 0.6
	rho := stats.ThetaNormBound(sigma, 30, 0.9)
	wConv, err := TrainColumn(Problem{X: x, Y: y}, SGDConfig{Epochs: 150}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	wVAT, err := TrainColumn(Problem{X: x, Y: y, Gamma: 0.3, Rho: rho}, SGDConfig{Epochs: 150}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(100)
	evalCorrupted := func(w []float64) float64 {
		correct := 0
		const trials = 40
		wc := make([]float64, len(w))
		for trial := 0; trial < trials; trial++ {
			for q := range w {
				wc[q] = w[q] * src.LogNormal(0, sigma)
			}
			for i := 0; i < x.Rows; i++ {
				if y[i]*mat.Dot(x.Row(i), wc) > 0 {
					correct++
				}
			}
		}
		return float64(correct) / float64(trials*x.Rows)
	}
	accConv := evalCorrupted(wConv)
	accVAT := evalCorrupted(wVAT)
	if accVAT <= accConv {
		t.Fatalf("VAT corrupted accuracy %.3f not above conventional %.3f", accVAT, accConv)
	}
}

func TestTrainAllAndAccuracy(t *testing.T) {
	// Three well-separated Gaussian blobs.
	src := rng.New(20)
	const s, n, classes = 300, 5, 3
	x := mat.NewMatrix(s, n)
	labels := make([]int, s)
	for i := 0; i < s; i++ {
		c := i % classes
		labels[i] = c
		row := x.Row(i)
		for q := range row {
			row[q] = src.Normal(0, 0.05)
		}
		row[c] += 0.9 // class-indicative feature
	}
	w, err := TrainAll(x, labels, classes, 0, 0, SGDConfig{Epochs: 80}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(x, labels, w); acc < 0.98 {
		t.Fatalf("blob accuracy %.3f, want >= 0.98", acc)
	}
}

func TestTrainAllValidation(t *testing.T) {
	x := mat.NewMatrix(4, 2)
	if _, err := TrainAll(x, []int{0, 1}, 2, 0, 0, SGDConfig{}, rng.New(1)); err == nil {
		t.Fatal("expected label count error")
	}
	if _, err := TrainAll(x, []int{0, 1, 2, 5}, 3, 0, 0, SGDConfig{}, rng.New(1)); err == nil {
		t.Fatal("expected label range error")
	}
	if _, err := TrainColumn(Problem{X: x, Y: []float64{1, 1, -1, -1}}, SGDConfig{}, nil); err == nil {
		t.Fatal("expected nil source error")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(mat.NewMatrix(0, 3), nil, mat.NewMatrix(3, 2)) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}
