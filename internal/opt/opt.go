// Package opt solves the training optimizations of the paper in software:
// the conventional hinge-loss program of Eq. (3) (used by GDT/OLD) and the
// variation-aware program of Eq. (8)-(10) (used by VAT), via projected
// stochastic sub-gradient descent.
//
// Per output column r the VAT program is
//
//	min sum_i eps_i
//	s.t. yhat_i * (x_i . w) >= 1 - eps_i + gamma*rho*||x_i o w||_2
//
// where "o" is the element-wise product, rho bounds ||theta||_2 at the
// configured confidence (stats.ThetaNormBound, Eq. 7), and gamma in [0,1]
// scales the penalty of variations (Eq. 10). gamma == 0 recovers the
// conventional program. The per-sample hinge loss is
//
//	L_i(w) = max(0, 1 + gamma*rho*||x_i o w||_2 - yhat_i*(x_i . w))
//
// whose sub-gradient drives the SGD update. Weights are projected onto
// the box [-WMax, WMax] after every step: the crossbar can only realize a
// bounded conductance range, so the software training must respect the
// same dynamic range it will be mapped onto.
package opt

import (
	"errors"
	"math"

	"vortex/internal/mat"
	"vortex/internal/rng"
)

// Problem is one column's training program.
type Problem struct {
	X     *mat.Matrix // s x n input samples (rows are samples)
	Y     []float64   // s targets in {-1, +1}
	Gamma float64     // penalty-of-variations scale, [0, 1]
	Rho   float64     // ||theta||_2 bound from the variation model
}

// Validate checks the problem for consistency.
func (p Problem) Validate() error {
	if p.X == nil || p.X.Rows == 0 || p.X.Cols == 0 {
		return errors.New("opt: empty problem")
	}
	if len(p.Y) != p.X.Rows {
		return errors.New("opt: target length mismatch")
	}
	for _, y := range p.Y {
		if y != 1 && y != -1 {
			return errors.New("opt: targets must be +/-1")
		}
	}
	if p.Gamma < 0 || p.Gamma > 1 {
		return errors.New("opt: gamma out of [0,1]")
	}
	if p.Rho < 0 {
		return errors.New("opt: negative rho")
	}
	return nil
}

// SGDConfig tunes the solver. Zero values select the defaults noted on
// each field.
type SGDConfig struct {
	Epochs    int     // sweeps over the data; default 60
	Rate      float64 // initial learning rate; default 0.05
	RateDecay float64 // per-epoch multiplicative decay; default 0.97
	WMax      float64 // weight box bound; default 1
	Tol       float64 // early stop when mean loss change < Tol; default 1e-6
}

func (c SGDConfig) withDefaults() SGDConfig {
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.Rate <= 0 {
		c.Rate = 0.05
	}
	if c.RateDecay <= 0 || c.RateDecay > 1 {
		c.RateDecay = 0.97
	}
	if c.WMax <= 0 {
		c.WMax = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// SampleLoss returns the VAT hinge loss of one sample.
func SampleLoss(w, x []float64, y, gamma, rho float64) float64 {
	margin := y * mat.Dot(x, w)
	pen := 0.0
	if gamma > 0 && rho > 0 {
		pen = gamma * rho * mat.Norm2(mat.HadamardVec(x, w))
	}
	l := 1 + pen - margin
	if l < 0 {
		return 0
	}
	return l
}

// MeanLoss returns the average VAT hinge loss of w on the problem.
func MeanLoss(p Problem, w []float64) float64 {
	s := 0.0
	for i := 0; i < p.X.Rows; i++ {
		s += SampleLoss(w, p.X.Row(i), p.Y[i], p.Gamma, p.Rho)
	}
	return s / float64(p.X.Rows)
}

// TrainColumn solves the program with projected SGD and returns the
// weight vector. The sample order is shuffled per epoch using src, so
// training is deterministic in the seed.
func TrainColumn(p Problem, cfg SGDConfig, src *rng.Source) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("opt: nil rng source")
	}
	cfg = cfg.withDefaults()
	n := p.X.Cols
	s := p.X.Rows
	w := make([]float64, n)
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	rate := cfg.Rate
	prevLoss := math.Inf(1)
	v := make([]float64, n) // scratch for x o w
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(s, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := p.X.Row(idx)
			y := p.Y[idx]
			// Evaluate the active constraint.
			margin := y * mat.Dot(x, w)
			pen := 0.0
			var vnorm float64
			if p.Gamma > 0 && p.Rho > 0 {
				for q := range v {
					v[q] = x[q] * w[q]
				}
				vnorm = mat.Norm2(v)
				pen = p.Gamma * p.Rho * vnorm
			}
			if 1+pen-margin <= 0 {
				continue // satisfied with slack zero: no sub-gradient
			}
			// Sub-gradient step: dL/dw_q = -y*x_q + gamma*rho*x_q^2*w_q/||v||.
			coef := 0.0
			if vnorm > 1e-30 {
				coef = p.Gamma * p.Rho / vnorm
			}
			for q := 0; q < n; q++ {
				g := -y*x[q] + coef*x[q]*x[q]*w[q]
				wq := w[q] - rate*g
				if wq > cfg.WMax {
					wq = cfg.WMax
				} else if wq < -cfg.WMax {
					wq = -cfg.WMax
				}
				w[q] = wq
			}
		}
		rate *= cfg.RateDecay
		loss := MeanLoss(p, w)
		if math.Abs(prevLoss-loss) < cfg.Tol {
			break
		}
		prevLoss = loss
	}
	return w, nil
}

// TrainAll trains one column per class with 1-vs-all targets and returns
// the n x classes weight matrix. labels[i] in [0, classes).
func TrainAll(x *mat.Matrix, labels []int, classes int, gamma, rho float64, cfg SGDConfig, src *rng.Source) (*mat.Matrix, error) {
	if len(labels) != x.Rows {
		return nil, errors.New("opt: label count mismatch")
	}
	w := mat.NewMatrix(x.Cols, classes)
	y := make([]float64, x.Rows)
	for class := 0; class < classes; class++ {
		for i, l := range labels {
			if l < 0 || l >= classes {
				return nil, errors.New("opt: label out of range")
			}
			if l == class {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		col, err := TrainColumn(Problem{X: x, Y: y, Gamma: gamma, Rho: rho}, cfg, src)
		if err != nil {
			return nil, err
		}
		w.SetCol(class, col)
	}
	return w, nil
}

// Accuracy returns the fraction of samples whose argmax output under
// y = x*W matches the label.
func Accuracy(x *mat.Matrix, labels []int, w *mat.Matrix) float64 {
	if x.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < x.Rows; i++ {
		scores := scoreRow(x.Row(i), w)
		if mat.ArgMax(scores) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows)
}

func scoreRow(x []float64, w *mat.Matrix) []float64 {
	scores := make([]float64, w.Cols)
	for q, xv := range x {
		if xv == 0 {
			continue
		}
		row := w.Row(q)
		for c, wv := range row {
			scores[c] += xv * wv
		}
	}
	return scores
}
