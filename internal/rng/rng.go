// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distribution samplers used throughout the Vortex
// simulator.
//
// Reproducibility is a hard requirement for the Monte-Carlo experiments in
// this repository: the same seed must produce the same crossbar variation
// map, the same dataset, and the same training trajectory on every run and
// on every platform. We therefore avoid math/rand's global state and
// implement xoshiro256** (Blackman & Vigna) directly; it is small, fast,
// and has well-understood statistical quality.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// a valid generator; use New or NewFromState.
type Source struct {
	s [4]uint64
}

// splitMix64 is used to seed the xoshiro state from a single word, as
// recommended by the xoshiro authors.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	var sm = seed
	var s Source
	for i := range s.s {
		s.s[i] = splitMix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of the parent's
// future output. It consumes entropy from the parent, so the parent's
// subsequent stream also changes; this is the intended "fork" semantics
// used to hand independent generators to parallel Monte-Carlo workers.
func (s *Source) Split() *Source {
	var sm = s.Uint64()
	var child Source
	for i := range child.s {
		child.s[i] = splitMix64(&sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 0x9e3779b97f4a7c15
	}
	return &child
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			x = s.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Norm returns a standard normally distributed sample (mean 0, stddev 1)
// using the polar (Marsaglia) method.
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Normal returns a sample from N(mu, sigma^2).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.Norm()
}

// LogNormal returns a sample exp(N(mu, sigma^2)). With mu = 0 this is the
// multiplicative device-variation factor e^theta used throughout the paper
// (reference [14] of the paper).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function (Fisher-Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormVec fills dst with independent N(0, sigma^2) samples and returns it.
// If dst is nil a new slice of length n is allocated.
func (s *Source) NormVec(dst []float64, n int, sigma float64) []float64 {
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		dst[i] = sigma * s.Norm()
	}
	return dst
}
