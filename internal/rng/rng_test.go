package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not produce the same stream.
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("parent and child emitted identical value at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/7) > 0.01 {
			t.Fatalf("bucket %d has frequency %v, want ~%v", i, frac, 1.0/7)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 400000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMoments(t *testing.T) {
	// For X ~ LogNormal(0, sigma^2): E[X] = exp(sigma^2/2).
	s := New(8)
	sigma := 0.5
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.LogNormal(0, sigma)
	}
	mean := sum / n
	want := math.Exp(sigma * sigma / 2)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("lognormal mean = %v, want ~%v", mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		n := 1 + int(seed%57)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestNormVec(t *testing.T) {
	s := New(12)
	v := s.NormVec(nil, 1000, 2.0)
	if len(v) != 1000 {
		t.Fatalf("len = %d", len(v))
	}
	var sumsq float64
	for _, x := range v {
		sumsq += x * x
	}
	sd := math.Sqrt(sumsq / 1000)
	if math.Abs(sd-2.0) > 0.2 {
		t.Fatalf("stddev = %v, want ~2", sd)
	}
	// Reuse path.
	w := make([]float64, 10)
	got := s.NormVec(w, 10, 1.0)
	if &got[0] != &w[0] {
		t.Fatal("NormVec did not reuse provided buffer")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}
