package vortex

// One benchmark per table/figure of the paper's evaluation. Each bench
// runs the corresponding experiment driver at Default scale (14x14
// benchmark images, paper-like protocol) and logs the regenerated
// rows/series; run with
//
//	go test -bench=. -benchtime=1x
//
// to print every artifact. Absolute values depend on the synthetic digit
// benchmark; EXPERIMENTS.md records the paper-vs-measured comparison.

import (
	"context"

	"testing"

	"vortex/internal/experiment"
)

func logResult(b *testing.B, name, table string) {
	b.Logf("%s (scale=%s):\n%s", name, experiment.Default, table)
}

// BenchmarkFig2ColumnTraining regenerates Fig. 2: output discrepancy of
// OLD vs CLD on a 100-memristor column across sigma, Monte-Carlo.
func BenchmarkFig2ColumnTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig2(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Fig. 2 — column training discrepancy", res.Table())
	}
}

// BenchmarkFig3IRDrop regenerates Fig. 3: the beta coefficient and
// D-matrix skew of the IR-drop decomposition versus crossbar size.
func BenchmarkFig3IRDrop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig3(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Fig. 3 — IR-drop decomposition (all-LRS worst case)", res.Table())
		b.Logf("skew > 2 crossover at %d rows (paper: ~128)", res.Crossover)
	}
}

// BenchmarkFig4GammaTradeoff regenerates Fig. 4: training rate and test
// rates with/without variation versus the VAT penalty scale gamma.
func BenchmarkFig4GammaTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig4(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Fig. 4 — variation tolerance vs training rate", res.Table())
	}
}

// BenchmarkFig7AMP regenerates Fig. 7: test rate before and after
// adaptive mapping across gamma.
func BenchmarkFig7AMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig7(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Fig. 7 — effectiveness of AMP", res.Table())
		b.Logf("best gamma: before AMP %.2f, after AMP %.2f (paper: 0.4 -> 0.2)",
			res.BestGammaBefore, res.BestGammaAfter)
	}
}

// BenchmarkFig8ADCResolution regenerates Fig. 8: test rate versus ADC
// resolution at several sigma levels.
func BenchmarkFig8ADCResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig8(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Fig. 8 — ADC resolution vs test rate", res.Table())
	}
}

// BenchmarkFig9Redundancy regenerates Fig. 9: test rate versus redundant
// rows with OLD/CLD baselines, including the headline average gains.
func BenchmarkFig9Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig9(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Fig. 9 — overhead vs test rate", res.Table())
		b.Logf("avg gain of Vortex(p=0): +%.1f points over OLD, +%.1f over CLD (paper: +29.6 / +26.4)",
			100*res.AvgGainOverOLD, 100*res.AvgGainOverCLD)
	}
}

// BenchmarkTable1Sizes regenerates Table 1: Vortex vs CLD with and
// without IR-drop at 784/196/49 rows.
func BenchmarkTable1Sizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table1(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Table 1 — Vortex vs CLD at different crossbar sizes", res.Table())
	}
}

// --- Extension and ablation benches (beyond the paper's artifacts) ---

// BenchmarkExtSchemes compares all four training schemes (including the
// program-and-verify alternative of paper ref [7]) across sigma.
func BenchmarkExtSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Schemes(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — schemes vs sigma", res.Table())
	}
}

// BenchmarkExtDefects sweeps the stuck-at defect rate with and without
// AMP (paper Sec. 4.2.2's defective-cell discussion, quantified).
func BenchmarkExtDefects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Defects(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — defect tolerance", res.Table())
	}
}

// BenchmarkExtCost accounts the programming pulses/time/energy of each
// scheme next to its test rate (the paper's Sec. 1 overhead narrative).
func BenchmarkExtCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Cost(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — training cost accounting", res.Table())
	}
}

// BenchmarkAblationMappers contrasts AMP mapping strategies: identity,
// random, greedy (Algorithm 1) and the exact Hungarian optimum.
func BenchmarkAblationMappers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Mappers(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Ablation — AMP mapping strategies", res.Table())
	}
}

// BenchmarkExtTiling sweeps the tile height of a partitioned crossbar
// under wire parasitics — the architectural alternative to IR
// compensation that Table 1 motivates.
func BenchmarkExtTiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Tiling(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — crossbar tiling", res.Table())
	}
}

// BenchmarkExtMLP contrasts the single-layer Vortex system with a
// two-layer crossbar network, plain vs noise-injection trained.
func BenchmarkExtMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.MLP(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — two-layer crossbar network", res.Table())
		b.Logf("clean software: linear %.1f%%, MLP %.1f%%", 100*res.CleanLinear, 100*res.CleanMLP)
	}
}

// BenchmarkExtPrecision sweeps the programming-DAC level count (the
// write-side dual of Fig. 8's read-ADC analysis).
func BenchmarkExtPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Precision(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — write precision", res.Table())
	}
}

// BenchmarkExtRefresh contrasts an aging system against one that is
// verify-reprogrammed on a logarithmic schedule, with the refresh cost.
func BenchmarkExtRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Refresh(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — periodic refresh vs drift", res.Table())
		b.Logf("%d refreshes, %d pulses over the horizon", res.Refreshes, res.PulseCost)
	}
}

// BenchmarkExtRetention ages programmed systems under retention drift and
// contrasts plain with drift-aware training margins.
func BenchmarkExtRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Retention(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — retention drift", res.Table())
	}
}

// BenchmarkExtFaults strikes deployed systems with stuck-cell faults and
// contrasts OLD, Vortex and Vortex plus the repair pipeline.
func BenchmarkExtFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.FaultSweep(context.Background(), experiment.Default, 42)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, "Extension — post-deployment faults and repair", res.Table())
	}
}
