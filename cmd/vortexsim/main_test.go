package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vortex/internal/obs"
)

// TestMetricsMuxServesPrometheus drives the -pprof endpoint surface
// through httptest: /metrics/prometheus must answer a payload that
// passes the exposition validator, and the pprof/expvar pages must be
// mounted.
func TestMetricsMuxServesPrometheus(t *testing.T) {
	obs.Default().Counter("vortexsim.test.reads").Add(3)
	srv := httptest.NewServer(newMetricsMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/prometheus = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if err := obs.ValidatePrometheus(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "vortexsim_test_reads_total 3") {
		t.Errorf("counter missing from exposition:\n%s", body)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

// TestBuildManifest checks the crash-dump manifest captures the run
// identity fields the post-mortem tooling keys on.
func TestBuildManifest(t *testing.T) {
	m := buildManifest("soasweep", "quick", 7)
	if m.Command != "vortexsim" || m.Experiment != "soasweep" || m.Scale != "quick" || m.Seed != 7 {
		t.Errorf("manifest identity = %+v", m)
	}
	if m.GoVersion == "" || m.GOMAXPROCS < 1 || m.KernelISA == "" || m.PID == 0 {
		t.Errorf("manifest environment incomplete: %+v", m)
	}
}
