// Command vortexsim runs the paper's experiments by id and prints the
// regenerated rows/series in the paper's shape. The set of experiments
// comes entirely from the experiment registry — adding a driver there
// makes it appear here with no CLI changes.
//
// Usage:
//
//	vortexsim -list
//	vortexsim -exp fig2 [-scale quick|default|full] [-seed N] [-timeout D]
//	vortexsim -exp all -scale default
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"vortex/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or all")
		scale   = flag.String("scale", "default", "experiment scale: quick, default or full")
		seed    = flag.Uint64("seed", 42, "random seed")
		list    = flag.Bool("list", false, "list available experiments")
		csv     = flag.Bool("csv", false, "emit comma-separated values instead of text tables")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	)
	flag.Parse()

	runners := experiment.Runners()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range runners {
			fmt.Printf("  %-9s %s\n", r.Name, r.Description)
		}
		fmt.Println("  all       run everything")
		return 0
	}
	sc, err := experiment.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var toRun []experiment.Runner
	if *exp == "all" {
		toRun = runners
	} else {
		r, ok := experiment.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			if close := experiment.Closest(*exp, 3); len(close) > 0 {
				fmt.Fprintf(os.Stderr, "did you mean: %s\n", strings.Join(close, ", "))
			}
			return 2
		}
		toRun = []experiment.Runner{r}
	}

	// Ctrl-C (or the -timeout deadline) cancels the context; drivers
	// thread it through their Monte-Carlo fan-out, so a running sweep
	// aborts cleanly instead of finishing the remaining repetitions.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt (or the deadline) has canceled the
	// context, restore the default signal disposition so a second
	// Ctrl-C kills the process immediately instead of being swallowed
	// while a long in-flight step drains.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	for _, r := range toRun {
		fmt.Printf("== %s (scale=%s, seed=%d)\n", r.Description, sc, *seed)
		start := time.Now()
		res, err := r.Run(ctx, sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Name, err)
			return 1
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.Table() + res.Annotation())
		}
		fmt.Printf("[%s in %v]\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
