// Command vortexsim runs the paper's experiments by id and prints the
// regenerated rows/series in the paper's shape.
//
// Usage:
//
//	vortexsim -list
//	vortexsim -exp fig2 [-scale quick|default|full] [-seed N]
//	vortexsim -exp all -scale default
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"vortex/internal/experiment"
)

type runner struct {
	describe string
	run      func(experiment.Scale, uint64) (string, error)
}

// tabular is any experiment result that can render itself both ways.
type tabular interface {
	Table() string
	CSV() string
}

// asCSV is set by the -csv flag; render picks the output form and, in
// CSV mode, drops the human annotations.
var asCSV bool

func render(r tabular, annotation string) string {
	if asCSV {
		return r.CSV()
	}
	return r.Table() + annotation
}

var experiments = map[string]runner{
	"fig2": {
		describe: "Fig. 2 — CLD vs OLD output discrepancy on a 100-memristor column vs sigma",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Fig2(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(%d Monte-Carlo runs per point)\n", r.Runs)), nil
		},
	},
	"fig3": {
		describe: "Fig. 3 — IR-drop decomposition: beta and D-matrix skew vs crossbar size",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Fig3(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("skew > 2 crossover at %d rows (paper: ~128)\n", r.Crossover)), nil
		},
	},
	"fig4": {
		describe: "Fig. 4 — variation tolerance vs training rate across gamma",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Fig4(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("peak test rate %.1f%% at gamma=%.2f (sigma=%.1f)\n",
				100*r.BestTestRate, r.BestGamma, r.Sigma)), nil
		},
	},
	"fig5": {
		describe: "Fig. 5 — self-tuning scan (the flow chart realized; prints the selected gamma)",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			gamma, curve, err := experiment.Fig4SelfTuned(s, seed)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "self-tuning selected gamma = %.2f\n", gamma)
			for _, pt := range curve {
				mark := ""
				if pt.SelectedByScan {
					mark = "  <- selected"
				}
				fmt.Fprintf(&b, "  gamma %.2f: train %.1f%%, val(clean) %.1f%%, val(varied) %.1f%%%s\n",
					pt.Gamma, 100*pt.TrainRate, 100*pt.CleanValRate, 100*pt.VariedValRate, mark)
			}
			return b.String(), nil
		},
	},
	"fig7": {
		describe: "Fig. 7 — effectiveness of AMP across gamma",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Fig7(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("best gamma before AMP %.2f, after AMP %.2f (paper: 0.4 -> 0.2)\n",
				r.BestGammaBefore, r.BestGammaAfter)), nil
		},
	},
	"fig8": {
		describe: "Fig. 8 — ADC resolution vs test rate",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Fig8(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, ""), nil
		},
	},
	"fig9": {
		describe: "Fig. 9 — design redundancy vs test rate, with OLD/CLD baselines",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Fig9(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("avg gain of Vortex(p=0): +%.1f points over OLD, +%.1f over CLD (paper: +29.6 / +26.4)\n",
				100*r.AvgGainOverOLD, 100*r.AvgGainOverCLD)), nil
		},
	},
	"schemes": {
		describe: "Extension — OLD vs PV vs CLD vs Vortex test rate across sigma",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Schemes(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, ""), nil
		},
	},
	"defects": {
		describe: "Extension — defect tolerance: test rate vs stuck-at rate, with/without AMP",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Defects(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(sigma=%.1f, %d redundant rows)\n", r.Sigma, r.Redundancy)), nil
		},
	},
	"faults": {
		describe: "Extension — post-deployment faults: OLD / Vortex / Vortex+repair vs stuck-cell rate",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.FaultSweep(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(sigma=%.1f, %d redundant rows, %d Monte-Carlo runs)\n",
				r.Sigma, r.Redundancy, r.MCRuns)), nil
		},
	},
	"cost": {
		describe: "Extension — hardware programming cost of each training scheme",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Cost(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, ""), nil
		},
	},
	"mappers": {
		describe: "Ablation — identity vs random vs greedy vs Hungarian AMP mapping",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Mappers(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(sigma=%.1f)\n", r.Sigma)), nil
		},
	},
	"tiling": {
		describe: "Extension — crossbar tiling: tile height vs test rate under IR-drop",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Tiling(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(sigma=%.1f, r_wire=%.1f ohm, %d inputs)\n",
				r.Sigma, r.RWire, r.Inputs)), nil
		},
	},
	"mlp": {
		describe: "Extension — two-layer (MLP) crossbar network: plain vs noise-injected training",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.MLP(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(hidden %d; clean software: linear %.1f%%, MLP %.1f%%)\n",
				r.Hidden, 100*r.CleanLinear, 100*r.CleanMLP)), nil
		},
	},
	"precision": {
		describe: "Extension — write precision: test rate vs programming-DAC levels",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Precision(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(variation column at sigma=%.1f)\n", r.Sigma)), nil
		},
	},
	"refresh": {
		describe: "Extension — periodic verify-refresh vs retention drift, with pulse cost",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Refresh(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(%d refreshes over the horizon, %d pulses)\n",
				r.Refreshes, r.PulseCost)), nil
		},
	},
	"retention": {
		describe: "Extension — retention drift: test rate vs age, plain vs drift-aware training",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Retention(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(sigma=%.1f, drift nu=%.2f+/-%.2f, horizon %.0e s)\n",
				r.Sigma, r.Drift.NuMean, r.Drift.NuSigma, r.Horizon)), nil
		},
	},
	"table1": {
		describe: "Table 1 — Vortex vs CLD at 784/196/49 rows, with and without IR-drop",
		run: func(s experiment.Scale, seed uint64) (string, error) {
			r, err := experiment.Table1(s, seed)
			if err != nil {
				return "", err
			}
			return render(r, fmt.Sprintf("(r_wire=%.1f ohm, sigma=%.1f, redundancy=%d at 784 rows)\n",
				r.RWire, r.Sigma, r.Redundancy)), nil
		},
	},
}

func parseScale(s string) (experiment.Scale, error) {
	switch s {
	case "quick":
		return experiment.Quick, nil
	case "default", "":
		return experiment.Default, nil
	case "full":
		return experiment.Full, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want quick, default or full)", s)
	}
}

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (fig2..fig9, table1, extensions: schemes/cost/defects/faults/mappers/precision/retention/refresh/tiling/mlp, or all)")
		scale = flag.String("scale", "default", "experiment scale: quick, default or full")
		seed  = flag.Uint64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list available experiments")
		csv   = flag.Bool("csv", false, "emit comma-separated values instead of text tables")
	)
	flag.Parse()
	asCSV = *csv

	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Strings(names)

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, name := range names {
			fmt.Printf("  %-7s %s\n", name, experiments[name].describe)
		}
		fmt.Println("  all     run everything")
		return
	}
	sc, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var toRun []string
	if *exp == "all" {
		toRun = names
	} else {
		if _, ok := experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		toRun = []string{*exp}
	}
	for _, name := range toRun {
		r := experiments[name]
		fmt.Printf("== %s (scale=%s, seed=%d)\n", r.describe, sc, *seed)
		start := time.Now()
		out, err := r.run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
