// Command vortexsim runs the paper's experiments by id and prints the
// regenerated rows/series in the paper's shape. The set of experiments
// comes entirely from the experiment registry — adding a driver there
// makes it appear here with no CLI changes.
//
// Usage:
//
//	vortexsim -list
//	vortexsim -exp fig2 [-scale quick|default|full] [-seed N] [-timeout D]
//	vortexsim -exp all -scale default
//
// Long sweeps (crash safety):
//
//	-checkpoint-dir D  persist each completed Monte-Carlo trial; a rerun
//	                   of the same experiment/scale/seed resumes, skipping
//	                   completed trials, with byte-identical output
//	-partial           degrade instead of failing: on timeout, interrupt
//	                   or exhausted retries, print the completed trials
//	                   with NA cells for the missing ones
//	-retries N         total attempts per trial (default 1 = no retries)
//	-retry-backoff D   base delay before the first retry, doubling per
//	                   retry (capped)
//
// Vectorized ensembles:
//
//	-vec P             trial-vectorized ensemble policy: auto (default)
//	                   vectorizes eligible Monte-Carlo sweeps where the
//	                   analytic backend already runs; force and scalar pin
//	                   the analytic backend and run the vectorized /
//	                   per-trial engine respectively (the two arms of the
//	                   parity checks — their output is byte-identical);
//	                   off disables the vectorized path entirely
//
// Fleet scenarios (-exp fleetdrift):
//
//	-fleet-traffic N   classification reads routed per epoch
//	-fleet-aging R     per-epoch stuck-conversion rate (negative = none)
//	-fleet-spares N    fleet members beyond the first (the spare budget)
//
// Observability:
//
//	-v / -log-level   structured logs (per-phase spans, live progress)
//	-log-format json  machine-readable log stream
//	-metrics FILE     write the final metrics snapshot as JSON
//	-metrics-prom F   write the final metrics in Prometheus text format
//	-trace FILE       retain completed spans and write them as Chrome
//	                  trace_event JSON (chrome://tracing, Perfetto)
//	-crash-dir D      where crash dumps land (default .); a panic,
//	                  SIGQUIT, timeout or driver failure writes
//	                  crash-<exp>-<ts>.json with the run manifest, the
//	                  metrics snapshot and the flight-recorder tail
//	-pprof ADDR       serve net/http/pprof, expvar and
//	                  /metrics/prometheus for live profiling/scraping
//
// Exit codes: 0 success, 1 driver failure, 2 usage error, 124 the
// -timeout deadline expired, 130 interrupted by Ctrl-C, 131 SIGQUIT
// (after writing a crash dump). On 124/130 with -checkpoint-dir set,
// the final checkpoint is flushed and the resume command is printed
// before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"vortex/internal/experiment"
	"vortex/internal/mat"
	"vortex/internal/obs"
)

const (
	exitOK        = 0
	exitFailure   = 1
	exitUsage     = 2
	exitTimeout   = 124 // convention of timeout(1)
	exitInterrupt = 130 // 128 + SIGINT
	exitQuit      = 131 // 128 + SIGQUIT, after the crash dump
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or all")
		scale     = flag.String("scale", "default", "experiment scale: quick, default or full")
		seed      = flag.Uint64("seed", 42, "random seed")
		list      = flag.Bool("list", false, "list available experiments")
		csv       = flag.Bool("csv", false, "emit comma-separated values instead of text tables")
		timeout   = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		verbose   = flag.Bool("v", false, "verbose: shorthand for -log-level debug")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		metrics   = flag.String("metrics", "", "write the final metrics-registry snapshot as JSON to this file")
		promPath  = flag.String("metrics-prom", "", "write the final metrics registry in Prometheus text exposition format to this file")
		tracePath = flag.String("trace", "", "retain completed spans and write them as Chrome trace_event JSON to this file")
		crashDir  = flag.String("crash-dir", ".", "directory crash dumps are written to on panic, SIGQUIT, timeout or driver failure")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics/prometheus on this address (e.g. localhost:6060)")

		fleetTraffic = flag.Int("fleet-traffic", 0, "fleetdrift: classification reads per epoch (0 = scale default)")
		fleetAging   = flag.Float64("fleet-aging", 0, "fleetdrift: per-epoch stuck-conversion rate (0 = scale default, negative = no background aging)")
		fleetSpares  = flag.Int("fleet-spares", 0, "fleetdrift: fleet members beyond the first (0 = scale default)")

		vec           = flag.String("vec", "auto", "trial-vectorized ensemble policy: auto, force, scalar or off")
		checkpointDir = flag.String("checkpoint-dir", "", "persist completed trials here and resume an interrupted run of the same experiment/scale/seed")
		partial       = flag.Bool("partial", false, "on timeout, interrupt or exhausted retries, print completed trials with NA cells instead of failing")
		retries       = flag.Int("retries", 1, "total attempts per Monte-Carlo trial (1 = no retries)")
		retryBackoff  = flag.Duration("retry-backoff", 10*time.Millisecond, "base delay before the first retry, doubling per retry (capped at 2s)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	if *verbose {
		level = slog.LevelDebug
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	obs.SetLogger(log)

	// Post-mortem instrumentation: the flight recorder retains the last
	// structured events, the manifest makes every crash dump
	// self-describing, and a panic escaping any driver (or the harness
	// itself) is dumped before it is re-raised with its stack intact.
	obs.SetFlight(obs.NewFlight(256))
	obs.SetManifest(buildManifest(*exp, *scale, *seed))
	dumpName := *exp
	if dumpName == "" {
		dumpName = "vortexsim"
	}
	defer func() {
		if r := recover(); r != nil {
			if path, err := obs.DumpCrash(*crashDir, dumpName, fmt.Sprintf("panic: %v", r)); err == nil {
				fmt.Fprintf(os.Stderr, "vortexsim: crash dump written to %s\n", path)
			}
			panic(r)
		}
	}()
	// SIGQUIT dumps and exits 131 — the "what is this run doing" escape
	// hatch for a wedged sweep.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		path, err := obs.DumpCrash(*crashDir, dumpName, "SIGQUIT")
		if err == nil {
			fmt.Fprintf(os.Stderr, "vortexsim: SIGQUIT; crash dump written to %s\n", path)
		}
		os.Exit(exitQuit)
	}()
	if *tracePath != "" {
		obs.SetTracer(obs.NewTraceBuffer(8192))
	}

	// Live progress from the Monte-Carlo fan-outs, throttled inside the
	// experiment package.
	experiment.SetProgress(func(done, total int, eta time.Duration) {
		if done < total {
			log.Info("progress", "done", done, "total", total, "eta", eta.Round(time.Second))
		} else {
			log.Debug("progress", "done", done, "total", total)
		}
	})

	if *pprofAddr != "" {
		// Expose the metrics registry next to the standard pprof and
		// expvar endpoints so a long full-scale sweep can be inspected
		// live: /debug/pprof/, /debug/vars, /metrics/prometheus. The
		// server is closed (and its goroutine joined) on every exit path,
		// including 124/130, so an aborted run never leaks the listener.
		expvar.Publish("vortex_metrics", expvar.Func(func() any {
			return obs.Default().Snapshot()
		}))
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
		} else {
			srv := &http.Server{Handler: newMetricsMux()}
			served := make(chan struct{})
			go func() {
				defer close(served)
				if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
					log.Error("pprof server failed", "addr", *pprofAddr, "err", err)
				}
			}()
			defer func() {
				srv.Close()
				<-served
			}()
			log.Info("pprof listening", "addr", ln.Addr().String())
		}
	}

	runners := experiment.Runners()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range runners {
			fmt.Printf("  %-9s %s\n", r.Name, r.Description)
		}
		fmt.Println("  all       run everything")
		return exitOK
	}
	sc, err := experiment.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	vecPol, err := experiment.ParseVecPolicy(*vec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}

	var toRun []experiment.Runner
	if *exp == "all" {
		toRun = runners
	} else {
		r, ok := experiment.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			if close := experiment.Closest(*exp, 3); len(close) > 0 {
				fmt.Fprintf(os.Stderr, "did you mean: %s\n", strings.Join(close, ", "))
			}
			return exitUsage
		}
		toRun = []experiment.Runner{r}
	}

	// Ctrl-C (or the -timeout deadline) cancels the context; drivers
	// thread it through their Monte-Carlo fan-out, so a running sweep
	// aborts cleanly instead of finishing the remaining repetitions.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt (or the deadline) has canceled the
	// context, restore the default signal disposition so a second
	// Ctrl-C kills the process immediately instead of being swallowed
	// while a long in-flight step drains.
	go func() {
		<-ctx.Done()
		stop()
	}()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The resilient-execution config rides the context into every
	// registered runner: checkpointing, degradation and retry policy.
	// Fleet-scenario knobs ride the context the same way; drivers other
	// than fleetdrift ignore them.
	ctx = experiment.WithFleetParams(ctx, experiment.FleetParams{
		Traffic: *fleetTraffic,
		Aging:   *fleetAging,
		Spares:  *fleetSpares,
	})
	ctx = experiment.WithRunConfig(ctx, experiment.RunConfig{
		CheckpointDir: *checkpointDir,
		Partial:       *partial,
		Retry: experiment.RetryPolicy{
			MaxAttempts: *retries,
			BaseBackoff: *retryBackoff,
		},
		Vectorize: vecPol,
	})

	wallStart := time.Now()
	code := exitOK
	for _, r := range toRun {
		fmt.Printf("== %s (scale=%s, seed=%d)\n", r.Description, sc, *seed)
		start := time.Now()
		res, err := r.Run(ctx, sc, *seed)
		if err != nil {
			code = abortCode(err, ctx, *timeout, time.Since(wallStart), log)
			if code == exitFailure {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Name, err)
			}
			break
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.Table() + res.Annotation())
		}
		fmt.Printf("[%s in %v]\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
	if code == exitOK && ctx.Err() != nil {
		// -partial absorbed the timeout/interrupt inside the drivers and
		// rendered degraded tables; the exit code still reports the abort.
		code = abortCode(ctx.Err(), ctx, *timeout, time.Since(wallStart), log)
	}
	if code == exitOK {
		log.Info("run complete", "experiments", len(toRun), "elapsed", time.Since(wallStart).Round(time.Millisecond))
	}
	if *checkpointDir != "" && (code == exitTimeout || code == exitInterrupt) {
		// The registry decoration flushed the final checkpoint on the way
		// out; tell the user how to pick the sweep back up.
		resume := fmt.Sprintf("vortexsim -exp %s -scale %s -seed %d -checkpoint-dir %s",
			*exp, sc, *seed, *checkpointDir)
		fmt.Fprintf(os.Stderr, "vortexsim: checkpoints retained; resume with: %s\n", resume)
		log.Info("resume command", "cmd", resume)
	}

	// A run that died (driver failure or timeout) leaves a post-mortem
	// dump; interrupts don't — Ctrl-C is the user, not a fault.
	if code == exitFailure || code == exitTimeout {
		reason := "driver failure"
		if code == exitTimeout {
			reason = "timeout"
		}
		if path, err := obs.DumpCrash(*crashDir, dumpName, reason); err != nil {
			log.Warn("crash dump failed", "err", err)
		} else {
			fmt.Fprintf(os.Stderr, "vortexsim: crash dump written to %s\n", path)
			log.Info("crash dump written", "file", path, "reason", reason)
		}
	}

	// The snapshot, trace and Prometheus dump are written even after a
	// timeout or interrupt: the partial data is often exactly what the
	// user aborted to see.
	if *metrics != "" {
		if err := writeMetrics(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == exitOK {
				code = exitFailure
			}
		} else {
			log.Info("metrics snapshot written", "file", *metrics)
		}
	}
	if *promPath != "" {
		if err := writePromMetrics(*promPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == exitOK {
				code = exitFailure
			}
		} else {
			log.Info("prometheus metrics written", "file", *promPath)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == exitOK {
				code = exitFailure
			}
		} else {
			log.Info("trace written", "file", *tracePath, "spans", obs.Tracer().Len(),
				"dropped", obs.Tracer().Dropped())
		}
	}
	return code
}

// newMetricsMux builds the -pprof endpoint surface: the standard
// net/http/pprof pages, expvar, and the Prometheus exposition of the
// default metrics registry.
func newMetricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics/prometheus", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Default().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// buildManifest captures the run identity attached to every crash dump.
func buildManifest(exp, scale string, seed uint64) obs.Manifest {
	flags := map[string]string{}
	flag.Visit(func(f *flag.Flag) { flags[f.Name] = f.Value.String() })
	return obs.Manifest{
		Command:    "vortexsim",
		Experiment: exp,
		Scale:      scale,
		Seed:       seed,
		Flags:      flags,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		KernelISA:  mat.KernelISA(),
		PID:        os.Getpid(),
		Start:      time.Now(),
	}
}

// writeTrace dumps the retained spans as Chrome trace_event JSON.
func writeTrace(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vortexsim: creating trace file: %w", err)
	}
	werr := obs.Tracer().WriteChromeTrace(fh)
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("vortexsim: writing trace: %w", werr)
	}
	return nil
}

// writePromMetrics dumps the registry in Prometheus text format.
func writePromMetrics(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vortexsim: creating prometheus file: %w", err)
	}
	werr := obs.Default().WritePrometheus(fh)
	if cerr := fh.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("vortexsim: writing prometheus metrics: %w", werr)
	}
	return nil
}

// abortCode classifies a run-ending error: the -timeout deadline and a
// Ctrl-C interrupt are reported distinctly (message and exit code),
// both with the elapsed wall time; anything else is a driver failure.
func abortCode(err error, ctx context.Context, timeout, elapsed time.Duration, log *slog.Logger) int {
	rounded := elapsed.Round(time.Millisecond)
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "vortexsim: timed out after %v (-timeout %v)\n", rounded, timeout)
		log.Warn("run timed out", "timeout", timeout, "elapsed", rounded)
		return exitTimeout
	case errors.Is(err, context.Canceled) || errors.Is(ctx.Err(), context.Canceled):
		fmt.Fprintf(os.Stderr, "vortexsim: interrupted after %v\n", rounded)
		log.Warn("run interrupted", "elapsed", rounded)
		return exitInterrupt
	default:
		return exitFailure
	}
}

// writeMetrics dumps the default-registry snapshot as indented JSON.
func writeMetrics(path string) error {
	raw, err := obs.Default().Snapshot().JSON()
	if err != nil {
		return fmt.Errorf("vortexsim: encoding metrics snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("vortexsim: writing metrics snapshot: %w", err)
	}
	return nil
}
