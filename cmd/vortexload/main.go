// Command vortexload drives a vortexd server to saturation and reports
// latency quantiles and throughput. Each worker goroutine runs a
// closed loop over the scale's held-out digit set (the same set the
// server was evaluated on, so the report includes real accuracy),
// speaking either the HTTP/JSON endpoint or the binary hot path;
// backpressure rejections are honored by sleeping the advertised
// Retry-After before retrying.
//
// Usage:
//
//	vortexload -addr 127.0.0.1:8372 -scale quick -n 10000 -c 8 -proto binary
//	vortexload -selfserve -scale quick -n 40000 -c 16 -o BENCH_pr9.json
//	vortexload -addr 127.0.0.1:8372 -retries 4 -hedge 50ms -req-timeout 2s
//
// Resilience: -retries arms the binary workers' retry policy (capped
// jittered exponential backoff behind a retry budget), -hedge fires a
// duplicate request on a second connection when the first stalls, and
// -req-timeout bounds one attempt. The report counts what the
// machinery did: retries, hedges, hedge wins and timeouts.
//
// -selfserve boots a fleet and a serve.Server in-process on a loopback
// listener, drives it over real TCP, then drains it — the one-command
// benchmark mode behind `make bench-json-serve`.
//
// The -o report records p50/p90/p99/p999/max latency, qps, accuracy,
// rejection counts and (when reachable) the server's /statz snapshot.
// Exit codes: 0 success, 1 failure (unreachable server, all requests
// errored), 2 usage error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"vortex/internal/dataset"
	"vortex/internal/serve"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

// workerStats accumulates one worker's closed-loop results.
type workerStats struct {
	latencies []float64 // microseconds, answered requests only
	answered  int64
	correct   int64
	degraded  int64
	rejected  int64 // backpressure rejections (retried)
	errors    int64
	client    serve.ClientStats // binary resilience counters
}

// clientOpts carries the resilience flags into the binary workers.
type clientOpts struct {
	retries    int
	backoff    time.Duration
	hedge      time.Duration
	reqTimeout time.Duration
}

// latencySummary is the quantile block of the report.
type latencySummary struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// report is the -o JSON schema (BENCH_pr9.json).
type report struct {
	PR          int            `json:"pr"`
	Date        string         `json:"date"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Addr        string         `json:"addr"`
	SelfServe   bool           `json:"selfserve"`
	Proto       string         `json:"proto"`
	Scale       string         `json:"scale"`
	Concurrency int            `json:"concurrency"`
	Requests    int64          `json:"requests"`
	Answered    int64          `json:"answered"`
	Rejected    int64          `json:"rejected_backpressure"`
	Errors      int64          `json:"errors"`
	Degraded    int64          `json:"degraded"`
	Retries     int64          `json:"retries,omitempty"`
	Hedges      int64          `json:"hedges,omitempty"`
	HedgeWins   int64          `json:"hedge_wins,omitempty"`
	Timeouts    int64          `json:"timeouts,omitempty"`
	ElapsedSec  float64        `json:"elapsed_sec"`
	QPS         float64        `json:"qps"`
	LatencyUs   latencySummary `json:"latency_us"`
	Accuracy    float64        `json:"accuracy"`
	Server      *serve.Stats   `json:"server,omitempty"`
	ServedDrain int64          `json:"server_served_at_drain,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8372", "server address (host:port)")
		selfserve = flag.Bool("selfserve", false, "boot the fleet and server in-process on a loopback listener")
		scale     = flag.String("scale", "quick", "input protocol scale: quick, default or full (must match the server)")
		seed      = flag.Uint64("seed", 42, "input-set seed (must match the server)")
		n         = flag.Int64("n", 10000, "total requests to send (spread over workers)")
		conc      = flag.Int("c", 8, "concurrent closed-loop workers (connections)")
		proto     = flag.String("proto", "binary", "protocol: json, binary or mixed (workers alternate)")
		connWait  = flag.Duration("connect-timeout", 15*time.Second, "how long to wait for the server to accept connections")
		out       = flag.String("o", "", "write the JSON report here (e.g. BENCH_pr9.json)")

		retries      = flag.Int("retries", 1, "binary: max attempts per request (1 = no retries)")
		retryBackoff = flag.Duration("retry-backoff", 10*time.Millisecond, "binary: first retry's backoff ceiling (doubles, jittered)")
		hedge        = flag.Duration("hedge", 0, "binary: fire a duplicate request on a second connection after this stall (0 = off)")
		reqTimeout   = flag.Duration("req-timeout", 0, "binary: bound one attempt's round-trip (0 = unbounded)")

		members = flag.Int("members", 3, "selfserve: arrays in the fleet")
		queueD  = flag.Int("queue", 256, "selfserve: request-queue depth")
		batch   = flag.Int("batch", 32, "selfserve: micro-batch size cap")
		workers = flag.Int("workers", 2, "selfserve: batcher goroutines")
	)
	flag.Parse()
	if *conc < 1 || *n < 1 {
		fmt.Fprintln(os.Stderr, "vortexload: -c and -n must be positive")
		return exitUsage
	}
	switch *proto {
	case "json", "binary", "mixed":
	default:
		fmt.Fprintf(os.Stderr, "vortexload: unknown -proto %q (want json, binary or mixed)\n", *proto)
		return exitUsage
	}

	set, err := serve.LoadSet(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortexload:", err)
		return exitUsage
	}

	var srv *serve.Server
	target := *addr
	if *selfserve {
		boot, err := serve.BuildFleet(serve.BootConfig{Scale: *scale, Members: *members, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortexload:", err)
			return exitFailure
		}
		srv, err = serve.New(serve.Config{
			Inputs:     boot.Inputs,
			Engine:     boot.Fleet,
			QueueDepth: *queueD,
			BatchMax:   *batch,
			Workers:    *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortexload:", err)
			return exitFailure
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortexload:", err)
			return exitFailure
		}
		go srv.Serve(ln)
		target = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "vortexload: selfserve fleet up on %s (inputs=%d, accuracy=%.3f)\n",
			target, boot.Inputs, boot.Accuracy)
	}

	if err := waitReady(target, *connWait); err != nil {
		fmt.Fprintln(os.Stderr, "vortexload:", err)
		return exitFailure
	}

	// The closed loop: workers split the request budget and hammer
	// until it is spent.
	perWorker := splitBudget(*n, *conc)
	stats := make([]workerStats, *conc)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		p := *proto
		if p == "mixed" {
			if w%2 == 0 {
				p = "binary"
			} else {
				p = "json"
			}
		}
		wg.Add(1)
		go func(w int, p string, budget int64) {
			defer wg.Done()
			runWorker(&stats[w], p, target, set, w, budget, clientOpts{
				retries: *retries, backoff: *retryBackoff,
				hedge: *hedge, reqTimeout: *reqTimeout,
			})
		}(w, p, perWorker[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildReport(stats, elapsed, *proto, *scale, target, *conc, *n, *selfserve)
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortexload: selfserve drain:", err)
			return exitFailure
		}
		st := srv.Stats()
		rep.Server = &st
		rep.ServedDrain = srv.Served()
	} else if st, err := fetchStats(target); err == nil {
		rep.Server = st
	}

	fmt.Printf("vortexload: %d answered / %d sent in %.2fs  qps=%.0f  p50=%.0fµs p99=%.0fµs p999=%.0fµs  acc=%.3f  rejected=%d errors=%d\n",
		rep.Answered, rep.Requests, rep.ElapsedSec, rep.QPS,
		rep.LatencyUs.P50, rep.LatencyUs.P99, rep.LatencyUs.P999, rep.Accuracy, rep.Rejected, rep.Errors)
	if rep.Retries+rep.Hedges+rep.Timeouts > 0 {
		fmt.Printf("vortexload: resilience: retries=%d hedges=%d hedge_wins=%d timeouts=%d\n",
			rep.Retries, rep.Hedges, rep.HedgeWins, rep.Timeouts)
	}
	if rep.Answered == 0 {
		fmt.Fprintln(os.Stderr, "vortexload: no request was answered")
		return exitFailure
	}
	if *out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortexload:", err)
			return exitFailure
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vortexload:", err)
			return exitFailure
		}
		fmt.Fprintf(os.Stderr, "vortexload: report written to %s\n", *out)
	}
	return exitOK
}

// splitBudget spreads n requests over c workers, front-loading the
// remainder.
func splitBudget(n int64, c int) []int64 {
	out := make([]int64, c)
	base := n / int64(c)
	rem := n % int64(c)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// waitReady polls the server's /healthz until it answers or the
// timeout expires — vortexd spends its first moments training the
// fleet, so the load generator must outwait the boot.
func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz status %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready after %v: %w", addr, timeout, last)
}

// runWorker runs one closed loop: send, measure, honor backpressure,
// repeat until the budget is spent. Worker w starts at a staggered
// offset of the sample set so concurrent workers don't lockstep. The
// binary path rides a ResilientClient — retries, budget and hedging
// per opts — and its resilience counters land in st.client.
func runWorker(st *workerStats, proto, addr string, set *dataset.Set, w int, budget int64, opts clientOpts) {
	st.latencies = make([]float64, 0, budget)
	httpClient := &http.Client{Timeout: 30 * time.Second}
	var rc *serve.ResilientClient
	if proto == "binary" {
		var err error
		rc, err = serve.NewResilientClient(serve.ClientConfig{
			Addr:           addr,
			DialTimeout:    5 * time.Second,
			RequestTimeout: opts.reqTimeout,
			HedgeDelay:     opts.hedge,
			Retry: serve.RetryPolicy{
				MaxAttempts: opts.retries,
				BaseBackoff: opts.backoff,
				Seed:        uint64(w + 1),
			},
		})
		if err != nil {
			st.errors += budget
			return
		}
		defer func() {
			st.client = rc.Stats()
			rc.Close()
		}()
	}
	idx := (w * 37) % set.Len()
	for sent := int64(0); sent < budget; {
		s := set.Samples[idx]
		idx = (idx + 1) % set.Len()
		var (
			cls      serve.Classification
			err      error
			retryAft time.Duration
			rejected bool
		)
		t0 := time.Now()
		if proto == "binary" {
			cls, err = rc.Classify(s.Pixels)
			var rerr *serve.RemoteError
			if errors.As(err, &rerr) && rerr.Overloaded() {
				// The retry policy gave up on (or never retried) a
				// backpressure rejection: honor the advertised back-off
				// without spending budget, like the JSON path.
				rejected, retryAft = true, rerr.RetryAfter
			}
		} else {
			cls, rejected, retryAft, err = classifyJSON(httpClient, addr, s.Pixels)
		}
		lat := time.Since(t0)
		switch {
		case rejected:
			st.rejected++
			if retryAft <= 0 {
				retryAft = 50 * time.Millisecond
			}
			time.Sleep(retryAft)
			continue // retry the same sample; budget not spent
		case err != nil:
			st.errors++
			sent++
		default:
			st.answered++
			sent++
			st.latencies = append(st.latencies, float64(lat.Microseconds()))
			if cls.Class == s.Label {
				st.correct++
			}
			if cls.Degraded {
				st.degraded++
			}
		}
	}
}

// classifyJSON sends one vector through POST /v1/classify, reporting
// backpressure (429/503) with the advertised retry delay.
func classifyJSON(client *http.Client, addr string, x []float64) (serve.Classification, bool, time.Duration, error) {
	body, err := json.Marshal(serve.ClassifyRequest{Input: x})
	if err != nil {
		return serve.Classification{}, false, 0, err
	}
	resp, err := client.Post("http://"+addr+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.Classification{}, false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		var er serve.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return serve.Classification{}, true, time.Duration(er.RetryAfterMs) * time.Millisecond, nil
	}
	if resp.StatusCode != http.StatusOK {
		var er serve.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return serve.Classification{}, false, 0, fmt.Errorf("status %d: %s", resp.StatusCode, er.Error)
	}
	var cr serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return serve.Classification{}, false, 0, err
	}
	if cr.Result == nil {
		return serve.Classification{}, false, 0, errors.New("response missing result")
	}
	return *cr.Result, false, 0, nil
}

// fetchStats grabs the server's /statz snapshot (best effort).
func fetchStats(addr string) (*serve.Stats, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// buildReport merges the worker stats into the report.
func buildReport(stats []workerStats, elapsed time.Duration, proto, scale, addr string, conc int, n int64, selfserve bool) *report {
	var all []float64
	rep := &report{
		PR:          9,
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Addr:        addr,
		SelfServe:   selfserve,
		Proto:       proto,
		Scale:       scale,
		Concurrency: conc,
		Requests:    n,
		ElapsedSec:  elapsed.Seconds(),
	}
	var correct int64
	for i := range stats {
		st := &stats[i]
		rep.Answered += st.answered
		rep.Rejected += st.rejected
		rep.Errors += st.errors
		rep.Degraded += st.degraded
		rep.Retries += st.client.Retries
		rep.Hedges += st.client.Hedges
		rep.HedgeWins += st.client.HedgeWins
		rep.Timeouts += st.client.Timeouts
		correct += st.correct
		all = append(all, st.latencies...)
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Answered) / elapsed.Seconds()
	}
	if rep.Answered > 0 {
		rep.Accuracy = float64(correct) / float64(rep.Answered)
	}
	rep.LatencyUs = summarize(all)
	return rep
}

// summarize computes the latency quantile block (microseconds).
func summarize(lat []float64) latencySummary {
	if len(lat) == 0 {
		return latencySummary{}
	}
	sort.Float64s(lat)
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	return latencySummary{
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
		P999:  q(0.999),
		Mean:  sum / float64(len(lat)),
		Max:   lat[len(lat)-1],
		Count: len(lat),
	}
}
