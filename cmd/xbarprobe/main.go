// Command xbarprobe fabricates a memristor crossbar and prints its
// physical characteristics: the parametric-variation map, the delivered
// programming-voltage field under IR-drop, the D-matrix factors of a
// column, and the read-current error caused by the parasitics.
//
// Usage:
//
//	xbarprobe -rows 128 -cols 10 -sigma 0.4 -rwire 2.5 -defects 0.01
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"vortex/internal/device"
	"vortex/internal/irdrop"
	"vortex/internal/mat"
	"vortex/internal/rng"
	"vortex/internal/xbar"
)

func main() {
	var (
		rows    = flag.Int("rows", 64, "crossbar rows")
		cols    = flag.Int("cols", 10, "crossbar columns")
		sigma   = flag.Float64("sigma", 0.4, "lognormal variation sigma")
		rwire   = flag.Float64("rwire", 2.5, "wire resistance per segment [ohm]")
		defects = flag.Float64("defects", 0, "stuck-at defect rate")
		seed    = flag.Uint64("seed", 1, "fabrication seed")
		state   = flag.String("state", "lrs", "pre-set device state for probing: lrs, hrs or mid")
		sneak   = flag.Bool("sneak", false, "demonstrate sneak paths: single-cell reads under four line disciplines")
	)
	flag.Parse()

	if *sneak {
		sneakDemo(*rows, *cols, *rwire)
		return
	}

	cfg := xbar.Config{
		Rows:       *rows,
		Cols:       *cols,
		Model:      device.DefaultSwitchModel(),
		RWire:      *rwire,
		Sigma:      *sigma,
		DefectRate: *defects,
	}
	xb, err := xbar.New(cfg, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var r float64
	switch *state {
	case "lrs":
		r = cfg.Model.Ron
	case "hrs":
		r = cfg.Model.Roff
	case "mid":
		r = math.Sqrt(cfg.Model.Ron * cfg.Model.Roff)
	default:
		fmt.Fprintf(os.Stderr, "unknown state %q\n", *state)
		os.Exit(2)
	}
	for i := 0; i < *rows; i++ {
		for j := 0; j < *cols; j++ {
			xb.Cell(i, j).SetState(cfg.Model, r)
		}
	}
	fmt.Printf("crossbar %dx%d, sigma=%.2f, rwire=%.1f ohm, devices at %.0f ohm\n\n",
		*rows, *cols, *sigma, *rwire, r)

	fmt.Println("## variation map (e^theta; rows sampled)")
	printHeat(xb, func(i, j int) float64 { return xb.Cell(i, j).VariationFactor() })

	defectsFound := 0
	for i := 0; i < *rows; i++ {
		for j := 0; j < *cols; j++ {
			if xb.Cell(i, j).Defect != device.DefectNone {
				defectsFound++
			}
		}
	}
	fmt.Printf("\ndefective cells: %d / %d\n\n", defectsFound, *rows**cols)

	if *rwire > 0 {
		nw := xb.Network()
		fmt.Println("## delivered programming voltage [V] (full bias", cfg.Model.Vprog, "V)")
		dv := mat.NewMatrix(*rows, *cols)
		for j := 0; j < *cols; j++ {
			col, err := nw.DeliveredColumn(j, cfg.Model.Vprog)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			dv.SetCol(j, col)
		}
		printHeat(xb, dv.At)
		fmt.Printf("\nworst delivered voltage: %.3f V (top-right corner effect)\n", matMin(dv))

		mid := *cols / 2
		d, err := nw.DFactors(mid, cfg.Model.Vprog, cfg.Model.Rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		skew, err := nw.DSkew(mid, cfg.Model.Vprog, cfg.Model.Rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		beta, err := nw.Beta(mid, cfg.Model.Vprog, cfg.Model.Rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n## column %d D factors: top %.4g ... bottom %.4g  (skew %.3g, beta %.3g)\n",
			mid, d[0], d[len(d)-1], skew, beta)

		weff, err := xb.EffectiveWeights()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g := xb.Conductances()
		var worst float64
		for i := range g.Data {
			if e := math.Abs(weff.Data[i]-g.Data[i]) / g.Data[i]; e > worst {
				worst = e
			}
		}
		fmt.Printf("\n## read parasitics: worst per-cell effective-weight error %.1f%%\n", 100*worst)
	}
}

// printHeat renders a value field as an ASCII heat map, sampling rows if
// the crossbar is tall.
func printHeat(xb *xbar.Crossbar, at func(i, j int) float64) {
	const ramp = " .:-=+*#%@"
	rows, cols := xb.Rows(), xb.Cols()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := at(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	step := 1
	if rows > 32 {
		step = rows / 32
	}
	for i := 0; i < rows; i += step {
		fmt.Printf("%4d |", i)
		for j := 0; j < cols; j++ {
			idx := int((at(i, j) - lo) / span * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			fmt.Printf("%c", ramp[idx])
		}
		fmt.Println("|")
	}
	fmt.Printf("      range [%.4g, %.4g]\n", lo, hi)
}

func matMin(m *mat.Matrix) float64 {
	lo := math.Inf(1)
	for _, v := range m.Data {
		if v < lo {
			lo = v
		}
	}
	return lo
}

// sneakDemo measures one 100 kOhm cell under the four combinations of
// {LRS, HRS} background and {floating, driven} unselected lines — the
// quantified version of the paper's Sec. 4.2.1 pre-test protocol.
func sneakDemo(rows, cols int, rwire float64) {
	if rwire <= 0 {
		fmt.Fprintln(os.Stderr, "sneak analysis needs -rwire > 0")
		os.Exit(2)
	}
	const target = 100e3
	model := device.DefaultSwitchModel()
	ci, cj := rows/2, cols/2
	fmt.Printf("single-cell pre-test of a %.0f ohm cell at (%d,%d) in a %dx%d array (rwire %.1f ohm)\n\n",
		target, ci, cj, rows, cols, rwire)
	fmt.Printf("%-12s %-10s %-14s %-10s\n", "background", "lines", "apparent R", "error")
	for _, bg := range []struct {
		name string
		r    float64
	}{{"LRS", model.Ron}, {"HRS", model.Roff}} {
		for _, lines := range []struct {
			name     string
			floating bool
		}{{"floating", true}, {"driven", false}} {
			g := mat.NewMatrix(rows, cols)
			g.Fill(1 / bg.r)
			g.Set(ci, cj, 1/target)
			nw := irdrop.NewNetwork(g, rwire)
			var mask irdrop.LineMask
			if lines.floating {
				mask = irdrop.LineMask{Rows: make([]bool, rows), Cols: make([]bool, cols)}
			} else {
				mask = irdrop.AllDriven(rows, cols)
			}
			current, err := nw.ReadCellCurrent(ci, cj, 1.0, mask)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			apparent := 1.0 / current
			fmt.Printf("%-12s %-10s %-14.4g %+.1f%%\n",
				bg.name, lines.name, apparent, 100*(apparent-target)/target)
		}
	}
	fmt.Println("\nthe paper's protocol (HRS background, driven lines) is the accurate quadrant")
}
