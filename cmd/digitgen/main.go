// Command digitgen emits samples of the synthetic digit benchmark that
// stands in for MNIST in this reproduction, as ASCII art or CSV.
//
// Usage:
//
//	digitgen -n 3 -factor 2 -seed 7          # ASCII art, 14x14
//	digitgen -n 100 -format csv > digits.csv # pixels + label rows
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vortex/internal/dataset"
	"vortex/internal/rng"
)

func main() {
	var (
		n      = flag.Int("n", 10, "number of samples")
		factor = flag.Int("factor", 1, "undersampling factor (1, 2 or 4)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "ascii", "output format: ascii or csv")
		label  = flag.Int("label", -1, "emit only this digit class (-1 = all)")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	set, err := dataset.Generate(cfg, *n, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *factor != 1 {
		set, err = dataset.Undersample(set, *factor, dataset.Decimate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	switch *format {
	case "ascii":
		for i, s := range set.Samples {
			if *label >= 0 && s.Label != *label {
				continue
			}
			fmt.Printf("-- sample %d: digit %d --\n%s\n", i, s.Label, s.ASCII(set.Size))
		}
	case "csv":
		w := make([]string, set.Features()+1)
		for _, s := range set.Samples {
			if *label >= 0 && s.Label != *label {
				continue
			}
			for j, p := range s.Pixels {
				w[j] = strconv.FormatFloat(p, 'f', 4, 64)
			}
			w[len(w)-1] = strconv.Itoa(s.Label)
			fmt.Println(strings.Join(w, ","))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
}
