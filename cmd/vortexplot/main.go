// Command vortexplot renders an ASCII line chart from CSV on stdin — the
// terminal-native companion of vortexsim's -csv output.
//
// Usage:
//
//	go run ./cmd/vortexsim -exp fig4 -csv | \
//	    go run ./cmd/vortexplot -x gamma -y "train%,test% (w/ var)"
//
// Column selectors match CSV header names exactly. Non-numeric cells in
// selected columns are skipped with a warning.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vortex/internal/plot"
)

func main() {
	var (
		xcol   = flag.String("x", "", "x-axis column name (default: first column)")
		ycols  = flag.String("y", "", "comma-separated y column names (default: every numeric column but x)")
		width  = flag.Int("w", 60, "plot width")
		height = flag.Int("h", 18, "plot height")
		logx   = flag.Bool("logx", false, "logarithmic x axis")
	)
	flag.Parse()

	in := bufio.NewReader(os.Stdin)
	// Skip any non-CSV banner lines vortexsim prints before the header
	// (lines starting with "==" or "[").
	var csvText strings.Builder
	for {
		line, err := in.ReadString('\n')
		if len(line) > 0 && !strings.HasPrefix(line, "==") && !strings.HasPrefix(line, "[") &&
			strings.TrimSpace(line) != "" {
			csvText.WriteString(line)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	records, err := csv.NewReader(strings.NewReader(csvText.String())).ReadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsing CSV:", err)
		os.Exit(1)
	}
	if len(records) < 2 {
		fmt.Fprintln(os.Stderr, "need a header row and at least one data row")
		os.Exit(1)
	}
	header := records[0]
	colIdx := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		return -1
	}
	xi := 0
	if *xcol != "" {
		xi = colIdx(*xcol)
		if xi < 0 {
			fmt.Fprintf(os.Stderr, "unknown x column %q; header: %v\n", *xcol, header)
			os.Exit(2)
		}
	}
	var ys []int
	if *ycols != "" {
		for _, name := range strings.Split(*ycols, ",") {
			name = strings.TrimSpace(name)
			yi := colIdx(name)
			if yi < 0 {
				fmt.Fprintf(os.Stderr, "unknown y column %q; header: %v\n", name, header)
				os.Exit(2)
			}
			ys = append(ys, yi)
		}
	} else {
		// Every column except x that parses as numeric in the first row.
		for i := range header {
			if i == xi {
				continue
			}
			if _, err := parseNumeric(records[1][i]); err == nil {
				ys = append(ys, i)
			}
		}
	}
	if len(ys) == 0 {
		fmt.Fprintln(os.Stderr, "no numeric y columns found")
		os.Exit(2)
	}

	series := make([]plot.Series, len(ys))
	for si, yi := range ys {
		series[si].Name = header[yi]
	}
	skipped := 0
	for _, rec := range records[1:] {
		x, err := parseNumeric(rec[xi])
		if err != nil {
			skipped++
			continue
		}
		for si, yi := range ys {
			y, err := parseNumeric(rec[yi])
			if err != nil {
				skipped++
				continue
			}
			series[si].X = append(series[si].X, x)
			series[si].Y = append(series[si].Y, y)
		}
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d non-numeric cells\n", skipped)
	}
	out, err := plot.Render(series, plot.Options{Width: *width, Height: *height, LogX: *logx})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// parseNumeric parses a float, tolerating a trailing unit suffix like
// "6-bit" or "85.3%" so vortexsim tables plot directly.
func parseNumeric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	// Strip one trailing non-numeric run.
	end := len(s)
	for end > 0 {
		c := s[end-1]
		if (c >= '0' && c <= '9') || c == '.' {
			break
		}
		end--
	}
	return strconv.ParseFloat(s[:end], 64)
}
