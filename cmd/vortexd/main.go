// Command vortexd is the networked crossbar inference service: it
// boots a fleet of identically-trained, individually-fabricated arrays
// (internal/serve.BuildFleet), then serves classification requests on
// one TCP listener speaking both HTTP/JSON and the length-prefixed
// binary hot path, with bounded-queue backpressure and micro-batching
// into the fleet's zero-alloc ReadBatch (see DESIGN.md §14).
//
// Usage:
//
//	vortexd -addr :8372 -scale quick -members 3
//
// Endpoints:
//
//	POST /v1/classify        {"input":[...]} or {"inputs":[[...],...]}
//	GET  /healthz            serving/draining + served count
//	GET  /statz              admission/service counters + fleet census
//	GET  /metrics/prometheus metrics registry, text exposition 0.0.4
//	binary                   open the connection with the magic "VXB1"
//
// Backpressure: a full request queue answers 429 (HTTP, with
// Retry-After) or status 2 (binary, with a retry-after field) instead
// of queueing unboundedly.
//
// Shutdown: SIGTERM or SIGINT starts a graceful drain — the listener
// closes, new admissions get 503/status 3, everything already admitted
// is flushed through the fleet, and the served count is logged. The
// drain self-checks the admitted⇒answered books (accepted must equal
// served + failed + timed-out) and fails the exit when they don't
// balance. Exit codes: 0 clean drain, 1 boot/serve failure, drain
// timeout or accounting mismatch, 2 usage error.
//
// Chaos: -chaos arms the seeded network fault injector
// (internal/chaos) on the listener — e.g. -chaos latency,partial,reset
// -chaos-seed 11 replays the same per-connection fault sequence every
// run. It exists for resilience testing; never arm it in production.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vortex/internal/chaos"
	"vortex/internal/hw"
	"vortex/internal/obs"
	"vortex/internal/serve"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8372", "listen address")
		scale   = flag.String("scale", "quick", "fleet protocol scale: quick, default or full")
		members = flag.Int("members", 3, "arrays in the serving fleet")
		backend = flag.String("backend", "analytic", "array backend: analytic or circuit")
		sigma   = flag.Float64("sigma", 0.3, "lognormal fabrication variation")
		seed    = flag.Uint64("seed", 42, "training and fabrication seed")

		queueDepth  = flag.Int("queue", 256, "bounded request-queue depth (backpressure beyond it)")
		batchMax    = flag.Int("batch", 32, "micro-batch size cap")
		batchLinger = flag.Duration("batch-linger", 200*time.Microsecond, "how long a non-full micro-batch waits for more requests")
		workers     = flag.Int("workers", 2, "batcher goroutines")
		retryAfter  = flag.Duration("retry-after", 250*time.Millisecond, "client back-off advertised on backpressure rejections")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM/SIGINT")

		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "bound on one request finishing its arrival (anti-slowloris)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "bound on one binary response write")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "bound on a connection sitting idle between requests")
		reqTimeout   = flag.Duration("request-timeout", 15*time.Second, "per-request deadline from admission to answer (negative disables)")

		chaosMode = flag.String("chaos", "", "arm the network fault injector: comma list of latency, partial, reset, corrupt, accept-stall, freeze; or all (testing only)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "fault injector seed: the same seed replays the same per-connection fault sequence")

		verbose   = flag.Bool("v", false, "verbose: shorthand for -log-level debug")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	if *verbose {
		level = slog.LevelDebug
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	obs.SetLogger(log)

	var be hw.Backend
	switch *backend {
	case "analytic":
		be = hw.Analytic
	case "circuit":
		be = hw.Circuit
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (want analytic or circuit)\n", *backend)
		return exitUsage
	}

	bootStart := time.Now()
	log.Info("booting fleet", "scale", *scale, "members", *members, "backend", *backend, "seed", *seed)
	boot, err := serve.BuildFleet(serve.BootConfig{
		Scale:   *scale,
		Members: *members,
		Backend: be,
		Sigma:   *sigma,
		Seed:    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortexd:", err)
		return exitFailure
	}
	log.Info("fleet ready", "inputs", boot.Inputs, "members", *members,
		"accuracy", fmt.Sprintf("%.3f", boot.Accuracy), "elapsed", time.Since(bootStart).Round(time.Millisecond))

	srv, err := serve.New(serve.Config{
		Inputs:         boot.Inputs,
		Engine:         boot.Fleet,
		QueueDepth:     *queueDepth,
		BatchMax:       *batchMax,
		BatchLinger:    *batchLinger,
		Workers:        *workers,
		RetryAfter:     *retryAfter,
		ReadTimeout:    *readTimeout,
		WriteTimeout:   *writeTimeout,
		IdleTimeout:    *idleTimeout,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortexd:", err)
		return exitFailure
	}
	var ln net.Listener
	ln, err = net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vortexd:", err)
		return exitFailure
	}
	if *chaosMode != "" && *chaosMode != "none" {
		modes, err := chaos.ParseMode(*chaosMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vortexd:", err)
			return exitUsage
		}
		ln = chaos.Wrap(ln, chaos.Config{Seed: *chaosSeed, Modes: modes})
		log.Warn("chaos injector armed — every connection rides the fault stream",
			"modes", modes.String(), "seed", *chaosSeed)
	}
	log.Info("vortexd listening", "addr", ln.Addr().String(), "inputs", boot.Inputs,
		"queue", *queueDepth, "batch", *batchMax, "workers", *workers)

	// SIGTERM/SIGINT starts the drain; a second signal kills the
	// process immediately (default disposition restored).
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		sig := <-sigCh
		signal.Stop(sigCh)
		log.Info("drain started", "signal", sig.String(), "in_flight_queue", srv.Stats().QueueDepth)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "vortexd:", err)
		return exitFailure
	}
	if err := <-drained; err != nil {
		log.Error("drain incomplete", "err", err, "served", srv.Served())
		fmt.Fprintln(os.Stderr, "vortexd: drain incomplete:", err)
		return exitFailure
	}
	st := srv.Stats()
	log.Info("drain complete", "served", st.Served, "accepted", st.Accepted,
		"rejected_queue_full", st.RejectedQueueFull, "rejected_draining", st.RejectedDraining,
		"failed", st.Failed, "timed_out", st.TimedOut)
	// The admitted⇒answered self-check: a completed drain with admitted
	// requests unaccounted for means a response was lost — fail loudly
	// so the chaos smoke (and any operator) sees it.
	if st.Accepted != st.Served+st.Failed+st.TimedOut {
		log.Error("drain accounting mismatch", "accepted", st.Accepted,
			"served", st.Served, "failed", st.Failed, "timed_out", st.TimedOut)
		fmt.Fprintf(os.Stderr, "vortexd: drain accounting mismatch: accepted %d != served %d + failed %d + timed_out %d\n",
			st.Accepted, st.Served, st.Failed, st.TimedOut)
		return exitFailure
	}
	fmt.Printf("vortexd: drained cleanly; served %d requests\n", st.Served)
	return exitOK
}
