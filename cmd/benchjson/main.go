// Command benchjson measures the simulator's hot paths and writes a
// machine-readable benchmark record, so the perf trajectory of the repo
// is tracked in JSON instead of only prose benchmark dumps.
//
// It times the array read path on both hardware backends at the paper's
// full-scale geometry (784x10), measures the overhead of the obs
// instrumentation layer by re-running the analytic read with metrics
// recording disabled, and attaches the operation counters the
// instrumented runs accumulated.
//
// Usage:
//
//	benchjson [-o BENCH_pr3.json] [-rows 784] [-cols 10] [-reps 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vortex/internal/device"
	"vortex/internal/hw"
	"vortex/internal/mat"
	"vortex/internal/obs"
	"vortex/internal/rng"

	// Link in the circuit backend.
	_ "vortex/internal/xbar"
)

type readEntry struct {
	Backend  string  `json:"backend"`
	Obs      string  `json:"obs"` // "on" or "off"
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	Iters    int     `json:"iterations"`
}

type report struct {
	PR              int              `json:"pr"`
	Date            string           `json:"date"`
	GoVersion       string           `json:"go_version"`
	GOMAXPROCS      int              `json:"gomaxprocs"`
	Rows            int              `json:"rows"`
	Cols            int              `json:"cols"`
	ReadPath        []readEntry      `json:"read_path"`
	AnalyticSpeedup float64          `json:"analytic_speedup_vs_circuit"`
	Instrumentation instrumentation  `json:"instrumentation"`
	OpCounts        map[string]int64 `json:"op_counts"`
}

type instrumentation struct {
	OffNsPerOp  float64 `json:"analytic_read_obs_off_ns"`
	OnNsPerOp   float64 `json:"analytic_read_obs_on_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

func main() {
	var (
		out  = flag.String("o", "BENCH_pr3.json", "output file")
		rows = flag.Int("rows", 784, "array rows")
		cols = flag.Int("cols", 10, "array columns")
		reps = flag.Int("reps", 5, "benchmark repetitions (best-of)")
	)
	flag.Parse()
	if err := run(*out, *rows, *cols, *reps); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string, rows, cols, reps int) error {
	// Fresh registry window so op_counts reflects only the benchmarked
	// operations.
	obs.Default().Reset()

	rep := report{
		PR:         3,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       rows,
		Cols:       cols,
	}

	circuitOn, err := benchRead(hw.Circuit, rows, cols, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry("circuit", "on", circuitOn))

	analyticOn, err := benchRead(hw.Analytic, rows, cols, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry("analytic", "on", analyticOn))

	// The "before" number: the identical read loop with instrumentation
	// disabled — the only remaining probe cost is one atomic flag load.
	obs.SetEnabled(false)
	analyticOff, err := benchRead(hw.Analytic, rows, cols, reps)
	obs.SetEnabled(true)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry("analytic", "off", analyticOff))

	onNs := nsPerOp(analyticOn)
	offNs := nsPerOp(analyticOff)
	rep.Instrumentation = instrumentation{
		OffNsPerOp:  offNs,
		OnNsPerOp:   onNs,
		OverheadPct: 100 * (onNs - offNs) / offNs,
	}
	if circuitNs := nsPerOp(circuitOn); onNs > 0 {
		rep.AnalyticSpeedup = circuitNs / onNs
	}
	rep.OpCounts = obs.Default().Snapshot().Counters

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: analytic read %.0f ns/op (obs off %.0f, overhead %.1f%%), circuit %.0f ns/op (%.1fx)\n",
		out, onNs, offNs, rep.Instrumentation.OverheadPct, nsPerOp(circuitOn), rep.AnalyticSpeedup)
	return nil
}

// benchRead times Array.Read on a programmed rows x cols array,
// best-of-reps to shave scheduler noise.
func benchRead(backend hw.Backend, rows, cols, reps int) (testing.BenchmarkResult, error) {
	cfg := hw.Config{
		Rows:  rows,
		Cols:  cols,
		Model: device.DefaultSwitchModel(),
		Sigma: 0.3,
	}
	arr, err := hw.New(backend, cfg, rng.New(1))
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	targets := mat.NewMatrix(rows, cols)
	targets.Fill(100e3)
	if err := arr.ProgramTargets(targets, hw.ProgramOptions{}); err != nil {
		return testing.BenchmarkResult{}, err
	}
	v := make([]float64, rows)
	for i := range v {
		v[i] = 1
	}
	var best testing.BenchmarkResult
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arr.Read(v); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r == 0 || nsPerOp(res) < nsPerOp(best) {
			best = res
		}
	}
	return best, nil
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N <= 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func entry(backend, obsState string, r testing.BenchmarkResult) readEntry {
	return readEntry{
		Backend:  backend,
		Obs:      obsState,
		NsPerOp:  nsPerOp(r),
		AllocsOp: r.AllocsPerOp(),
		Iters:    r.N,
	}
}
