// Command benchjson measures the simulator's hot paths and writes a
// machine-readable benchmark record, so the perf trajectory of the repo
// is tracked in JSON instead of only prose benchmark dumps.
//
// It times the steady-state array read path (Array.ReadInto into a
// pooled buffer — the post-PR-4 hot path) on both hardware backends at
// the paper's full-scale geometry (784x10), the batched read path
// (Array.ReadBatch), the parasitic circuit read both warm-started
// (persistent network workspace) and cold (a detached snapshot network
// per read, the pre-PR-4 behaviour), and the overhead of the obs
// instrumentation layer by re-running the analytic read with metrics
// recording disabled. The operation counters the instrumented runs
// accumulated are attached at the end.
//
// The output schema matches BENCH_pr3.json: compare the "circuit"/"on"
// read_path entry against PR 3's 145µs/op, 3 allocs/op to see the
// reusable-workspace payoff.
//
// With -fleet it instead benchmarks the self-healing fleet layer
// (internal/fleet): steady-state router read cost over a three-member
// analytic fleet, then a kill-and-heal pass — a ten-percent stuck-cell
// burst on one member, repaired by the health controller under live
// traffic — reporting availability, pre/post accuracy and the repair
// count (BENCH_pr6.json).
//
// With -soa it benchmarks the trial-vectorized Monte-Carlo path: the
// Full-scale soasweep experiment under the per-trial scalar engine
// (-vec scalar) versus the structure-of-arrays vectorized path
// (-vec force) — asserting the two arms' CSV is byte-identical before
// writing anything — plus the fused batched read kernel's ns/op per ISA
// level (BENCH_pr7.json).
//
// With -obs it benchmarks the tracing pipeline itself: the analytic
// read hot path under metrics-off, metrics-on and metrics-plus-tracing,
// then the Full-scale soasweep on both engine paths with tracing off
// versus on, checking the enabled-tracing sweep overhead against the
// five-percent budget (BENCH_pr8.json).
//
// Usage:
//
//	benchjson [-o BENCH_pr4.json] [-rows 784] [-cols 10] [-reps 5] [-rwire 2.5] [-batch 64]
//	benchjson -fleet [-o BENCH_pr6.json] [-reps 5]
//	benchjson -soa [-o BENCH_pr7.json] [-seed 42] [-reps 5]
//	benchjson -obs [-o BENCH_pr8.json] [-seed 42] [-reps 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vortex/internal/device"
	"vortex/internal/hw"
	"vortex/internal/mat"
	"vortex/internal/obs"
	"vortex/internal/rng"
	// Importing xbar also links in the circuit backend registration.
	"vortex/internal/xbar"
)

type readEntry struct {
	Backend  string  `json:"backend"`
	Obs      string  `json:"obs"` // "on" or "off"
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	Iters    int     `json:"iterations"`
}

type report struct {
	PR              int              `json:"pr"`
	Date            string           `json:"date"`
	GoVersion       string           `json:"go_version"`
	GOMAXPROCS      int              `json:"gomaxprocs"`
	Rows            int              `json:"rows"`
	Cols            int              `json:"cols"`
	ReadPath        []readEntry      `json:"read_path"`
	AnalyticSpeedup float64          `json:"analytic_speedup_vs_circuit"`
	Instrumentation instrumentation  `json:"instrumentation"`
	OpCounts        map[string]int64 `json:"op_counts"`
}

type instrumentation struct {
	OffNsPerOp  float64 `json:"analytic_read_obs_off_ns"`
	OnNsPerOp   float64 `json:"analytic_read_obs_on_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

func main() {
	var (
		out   = flag.String("o", "BENCH_pr4.json", "output file")
		rows  = flag.Int("rows", 784, "array rows")
		cols  = flag.Int("cols", 10, "array columns")
		reps  = flag.Int("reps", 5, "benchmark repetitions (best-of)")
		rwire = flag.Float64("rwire", 2.5, "wire resistance for the parasitic circuit entries")
		batch = flag.Int("batch", 64, "batch size for the ReadBatch entries")
		fleet = flag.Bool("fleet", false, "benchmark the self-healing fleet layer instead (write BENCH_pr6.json-style output)")
		soa   = flag.Bool("soa", false, "benchmark the trial-vectorized Monte-Carlo path instead (write BENCH_pr7.json-style output)")
		obsM  = flag.Bool("obs", false, "benchmark the tracing/observability pipeline overhead instead (write BENCH_pr8.json-style output)")
		seed  = flag.Uint64("seed", 42, "experiment seed for the -soa/-obs sweep arms")
	)
	flag.Parse()
	if *fleet {
		if *out == "BENCH_pr4.json" {
			*out = "BENCH_pr6.json"
		}
		if err := runFleet(*out, *reps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *soa {
		if *out == "BENCH_pr4.json" {
			*out = "BENCH_pr7.json"
		}
		if err := runSoa(*out, *seed, *reps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *obsM {
		if *out == "BENCH_pr4.json" {
			*out = "BENCH_pr8.json"
		}
		if err := runObs(*out, *seed, *reps); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *rows, *cols, *reps, *rwire, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string, rows, cols, reps int, rwire float64, batch int) error {
	// Fresh registry window so op_counts reflects only the benchmarked
	// operations.
	obs.Default().Reset()

	rep := report{
		PR:         4,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       rows,
		Cols:       cols,
	}

	// Steady-state single reads (ReadInto into a pooled buffer).
	circuitOn, err := benchReadInto(hw.Circuit, rows, cols, 0, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry("circuit", "on", circuitOn))

	analyticOn, err := benchReadInto(hw.Analytic, rows, cols, 0, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry("analytic", "on", analyticOn))

	// The "before" number: the identical read loop with instrumentation
	// disabled — the only remaining probe cost is one atomic flag load.
	obs.SetEnabled(false)
	analyticOff, err := benchReadInto(hw.Analytic, rows, cols, 0, reps)
	obs.SetEnabled(true)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry("analytic", "off", analyticOff))

	// Batched reads: per-read cost inside an Array.ReadBatch call.
	circuitBatch, err := benchReadBatch(hw.Circuit, rows, cols, 0, batch, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry(fmt.Sprintf("circuit-batch%d", batch), "on", circuitBatch))

	analyticBatch, err := benchReadBatch(hw.Analytic, rows, cols, 0, batch, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry(fmt.Sprintf("analytic-batch%d", batch), "on", analyticBatch))

	// Parasitic circuit reads: warm-started (the persistent workspace
	// carries the previous converged solution) versus cold (a detached
	// snapshot network per read — the pre-PR-4 behaviour).
	warm, err := benchReadInto(hw.Circuit, rows, cols, rwire, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry(fmt.Sprintf("circuit-rwire%g-warm", rwire), "on", warm))

	cold, err := benchColdCircuit(rows, cols, rwire, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = append(rep.ReadPath, entry(fmt.Sprintf("circuit-rwire%g-cold", rwire), "on", cold))

	onNs := nsPerOp(analyticOn)
	offNs := nsPerOp(analyticOff)
	rep.Instrumentation = instrumentation{
		OffNsPerOp:  offNs,
		OnNsPerOp:   onNs,
		OverheadPct: 100 * (onNs - offNs) / offNs,
	}
	if circuitNs := nsPerOp(circuitOn); onNs > 0 {
		rep.AnalyticSpeedup = circuitNs / onNs
	}
	rep.OpCounts = obs.Default().Snapshot().Counters

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", out)
	fmt.Printf("  steady-state read: circuit %.0f ns/op (%d allocs), analytic %.0f ns/op (obs off %.0f, overhead %.1f%%)\n",
		nsPerOp(circuitOn), circuitOn.AllocsPerOp(), onNs, offNs, rep.Instrumentation.OverheadPct)
	fmt.Printf("  batched read (n=%d): circuit %.0f ns/op, analytic %.0f ns/op\n",
		batch, nsPerOp(circuitBatch), nsPerOp(analyticBatch))
	fmt.Printf("  parasitic circuit read (rwire %g): warm %.0f ns/op vs cold %.0f ns/op (%.1fx)\n",
		rwire, nsPerOp(warm), nsPerOp(cold), nsPerOp(cold)/nsPerOp(warm))
	return nil
}

// buildArray fabricates and programs a rows x cols array on the backend.
func buildArray(backend hw.Backend, rows, cols int, rwire float64) (hw.Array, error) {
	cfg := hw.Config{
		Rows:  rows,
		Cols:  cols,
		Model: device.DefaultSwitchModel(),
		Sigma: 0.3,
		RWire: rwire,
	}
	arr, err := hw.New(backend, cfg, rng.New(1))
	if err != nil {
		return nil, err
	}
	targets := mat.NewMatrix(rows, cols)
	targets.Fill(100e3)
	if err := arr.ProgramTargets(targets, hw.ProgramOptions{}); err != nil {
		return nil, err
	}
	return arr, nil
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// benchReadInto times the steady-state Array.ReadInto hot path into a
// pooled output buffer, best-of-reps to shave scheduler noise.
func benchReadInto(backend hw.Backend, rows, cols int, rwire float64, reps int) (testing.BenchmarkResult, error) {
	arr, err := buildArray(backend, rows, cols, rwire)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	v := ones(rows)
	dst := make([]float64, cols)
	// Warm the caches and the solver workspace before timing.
	if err := arr.ReadInto(dst, v); err != nil {
		return testing.BenchmarkResult{}, err
	}
	var best testing.BenchmarkResult
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := arr.ReadInto(dst, v); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r == 0 || nsPerOp(res) < nsPerOp(best) {
			best = res
		}
	}
	return best, nil
}

// benchReadBatch times Array.ReadBatch; the reported ns/op and
// allocs/op are per read (batch cost divided by batch size).
func benchReadBatch(backend hw.Backend, rows, cols int, rwire float64, batch, reps int) (testing.BenchmarkResult, error) {
	arr, err := buildArray(backend, rows, cols, rwire)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	vins := make([][]float64, batch)
	for i := range vins {
		vins[i] = ones(rows)
	}
	var best testing.BenchmarkResult
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arr.ReadBatch(vins); err != nil {
					b.Fatal(err)
				}
			}
		})
		res.N *= batch // normalize to per-read cost
		if r == 0 || nsPerOp(res) < nsPerOp(best) {
			best = res
		}
	}
	return best, nil
}

// benchColdCircuit times the pre-PR-4 parasitic read: a detached
// snapshot network per read, fresh scratch, no warm start.
func benchColdCircuit(rows, cols int, rwire float64, reps int) (testing.BenchmarkResult, error) {
	arr, err := buildArray(hw.Circuit, rows, cols, rwire)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	xb := arr.(*xbar.Crossbar)
	v := ones(rows)
	var best testing.BenchmarkResult
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := xb.Network().Read(v); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r == 0 || nsPerOp(res) < nsPerOp(best) {
			best = res
		}
	}
	return best, nil
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N <= 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func entry(backend, obsState string, r testing.BenchmarkResult) readEntry {
	return readEntry{
		Backend:  backend,
		Obs:      obsState,
		NsPerOp:  nsPerOp(r),
		AllocsOp: r.AllocsPerOp(),
		Iters:    r.N,
	}
}
