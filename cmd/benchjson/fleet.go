package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vortex/internal/dataset"
	"vortex/internal/fault"
	"vortex/internal/fleet"
	"vortex/internal/hw"
	"vortex/internal/ncs"
	"vortex/internal/obs"
	"vortex/internal/opt"
	"vortex/internal/rng"
	"vortex/internal/train"
)

// fleetReport is the machine-readable record of the self-healing fleet
// scenario (BENCH_pr6.json): the router's steady-state read cost, and
// the availability/accuracy numbers of a kill-and-heal pass — a
// ten-percent stuck-cell burst on one member, detected and repaired by
// the health controller while traffic keeps flowing.
type fleetReport struct {
	PR         int    `json:"pr"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Members    int `json:"members"`
	Features   int `json:"features"`
	Redundancy int `json:"redundancy"`

	RouterNsPerRead   float64 `json:"router_ns_per_read"`
	RouterReadsPerSec float64 `json:"router_reads_per_sec"`
	RouterAllocsOp    int64   `json:"router_allocs_per_read"`

	AccuracyPreBurst float64 `json:"accuracy_pre_burst"`
	AccuracyPostHeal float64 `json:"accuracy_post_heal"`
	Availability     float64 `json:"availability"`
	Healed           bool    `json:"healed"`
	BurstKilledCells int     `json:"burst_killed_cells"`
	Repairs          int64   `json:"repairs"`
	Rejoins          int64   `json:"rejoins"`
	Failovers        int64   `json:"failovers"`

	OpCounts map[string]int64 `json:"op_counts"`
}

// runFleet builds a three-member analytic fleet over the synthetic
// digit benchmark, measures the router's read throughput, then runs the
// kill-and-heal scenario and writes the report.
func runFleet(out string, reps int) error {
	obs.Default().Reset()

	trainSet, testSet, err := benchSets()
	if err != nil {
		return err
	}
	w, err := train.SoftwareGDT(trainSet, dataset.NumClasses, opt.SGDConfig{Epochs: 20}, rng.New(3))
	if err != nil {
		return err
	}
	const members = 3
	redundancy := trainSet.Features() / 4
	vopts := hw.VerifyOptions{TolLog: 0.02, MaxIter: 5}
	specs := make([]fleet.MemberSpec, members)
	probeBase := 1.0
	for i := range specs {
		cfg := ncs.DefaultConfig(trainSet.Features(), dataset.NumClasses)
		cfg.Backend = hw.Analytic
		cfg.Sigma = 0.25
		cfg.Redundancy = redundancy
		cfg.ADCBits = 6
		n, err := ncs.New(cfg, rng.New(uint64(100+i)))
		if err != nil {
			return err
		}
		if _, err := n.ProgramWeightsVerify(w, vopts); err != nil {
			return err
		}
		acc, err := n.Evaluate(testSet)
		if err != nil {
			return err
		}
		if acc < probeBase {
			probeBase = acc
		}
		specs[i] = fleet.MemberSpec{ID: fmt.Sprintf("m%d", i), Sys: n, Weights: w}
	}
	fl, err := fleet.New(fleet.Config{Breaker: fleet.BreakerConfig{ProbeSuccesses: 3}}, specs)
	if err != nil {
		return err
	}

	rep := fleetReport{
		PR:         6,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Members:    members,
		Features:   trainSet.Features(),
		Redundancy: redundancy,
	}

	// Steady-state router throughput, best-of-reps.
	x := testSet.Samples[0].Pixels
	var best testing.BenchmarkResult
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fl.Classify(x); err != nil {
					b.Fatal(err)
				}
			}
		})
		if r == 0 || nsPerOp(res) < nsPerOp(best) {
			best = res
		}
	}
	rep.RouterNsPerRead = nsPerOp(best)
	if rep.RouterNsPerRead > 0 {
		rep.RouterReadsPerSec = 1e9 / rep.RouterNsPerRead
	}
	rep.RouterAllocsOp = best.AllocsPerOp()

	if rep.AccuracyPreBurst, err = fleetAccuracy(fl, testSet); err != nil {
		return err
	}

	// Kill and heal: a ten-percent stuck burst on one member, routine
	// scans every other tick, traffic flowing throughout.
	ctrl := fleet.NewController(fl, fleet.ControllerConfig{
		Repair:        fault.Policy{Verify: vopts},
		ScanEvery:     2,
		RejoinDamage:  0.05,
		DegradeDamage: 0.12,
		Probe:         testSet,
		ProbeBaseline: probeBase,
	})
	aging, err := fleet.NewAging(fl, fleet.AgingConfig{Seed: 9})
	if err != nil {
		return err
	}
	burst, err := aging.Burst("m0", fault.Config{StuckRate: 0.10}, 99)
	if err != nil {
		return err
	}
	rep.BurstKilledCells = burst.Total()
	victim := fl.Member("m0")
	ctx := context.Background()
	for tick := 0; tick < 200; tick++ {
		for i := 0; i < 20; i++ {
			// Unanswered reads are the scenario's data, visible in the
			// availability ratio below.
			fl.Classify(testSet.Samples[(20*tick+i)%testSet.Len()].Pixels) //nolint:errcheck
		}
		ctrl.Tick(ctx)
		ctrl.Quiesce()
		if victim.State() == fleet.Serving && ctrl.Stats().Repairs >= 1 &&
			victim.Breaker().State() == fleet.BreakerClosed {
			rep.Healed = true
			break
		}
	}
	if rep.AccuracyPostHeal, err = fleetAccuracy(fl, testSet); err != nil {
		return err
	}
	st := fl.Stats()
	rep.Availability = st.Availability()
	cs := ctrl.Stats()
	rep.Repairs = cs.Repairs
	rep.Rejoins = cs.Rejoins
	rep.Failovers = st.Failovers
	rep.OpCounts = obs.Default().Snapshot().Counters

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", out)
	fmt.Printf("  router read: %.0f ns (%.0f reads/s, %d allocs)\n",
		rep.RouterNsPerRead, rep.RouterReadsPerSec, rep.RouterAllocsOp)
	fmt.Printf("  kill-and-heal: %d cells killed, healed=%v, availability %.4f, accuracy %.3f -> %.3f (%d repairs)\n",
		rep.BurstKilledCells, rep.Healed, rep.Availability,
		rep.AccuracyPreBurst, rep.AccuracyPostHeal, rep.Repairs)
	return nil
}

// benchSets generates the quick-scale synthetic digit sets the fleet
// scenario trains and probes with.
func benchSets() (trainSet, testSet *dataset.Set, err error) {
	cfg := dataset.DefaultConfig()
	trainSet, err = dataset.GenerateBalanced(cfg, 25, rng.New(1))
	if err != nil {
		return nil, nil, err
	}
	testSet, err = dataset.GenerateBalanced(cfg, 15, rng.New(2))
	if err != nil {
		return nil, nil, err
	}
	trainSet, err = dataset.Undersample(trainSet, 4, dataset.Decimate)
	if err != nil {
		return nil, nil, err
	}
	testSet, err = dataset.Undersample(testSet, 4, dataset.Decimate)
	if err != nil {
		return nil, nil, err
	}
	return trainSet, testSet, nil
}

// fleetAccuracy classifies the whole set through the router and returns
// the fraction answered correctly.
func fleetAccuracy(fl *fleet.Fleet, set *dataset.Set) (float64, error) {
	correct := 0
	for _, s := range set.Samples {
		r, err := fl.Classify(s.Pixels)
		if err != nil {
			return 0, err
		}
		if r.Class == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(set.Len()), nil
}
