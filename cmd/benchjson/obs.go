package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vortex/internal/experiment"
	"vortex/internal/hw"
	"vortex/internal/obs"
)

// obsReadEntry records the analytic steady-state read cost under one
// instrumentation state: metrics disabled, metrics enabled, and metrics
// enabled with a trace buffer and flight recorder installed.
type obsReadEntry struct {
	State    string  `json:"state"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	Iters    int     `json:"iterations"`
}

// obsSweepEntry records one Full-scale soasweep arm — a vectorize
// policy crossed with tracing on or off. With tracing on, the span and
// event retention of the run rides along so the record shows what the
// overhead bought.
type obsSweepEntry struct {
	Policy       string  `json:"policy"`
	Tracing      string  `json:"tracing"`
	Trials       int     `json:"trials"`
	SweepMs      float64 `json:"sweep_ms"`
	TotalMs      float64 `json:"total_ms"`
	TraceSpans   int     `json:"trace_spans,omitempty"`
	TraceDropped int64   `json:"trace_spans_dropped,omitempty"`
	FlightEvents int     `json:"flight_events,omitempty"`
}

type obsReport struct {
	PR               int                `json:"pr"`
	Date             string             `json:"date"`
	GoVersion        string             `json:"go_version"`
	GOMAXPROCS       int                `json:"gomaxprocs"`
	Scale            string             `json:"scale"`
	Seed             uint64             `json:"seed"`
	ReadPath         []obsReadEntry     `json:"analytic_read_784x10"`
	ReadOverheadPct  map[string]float64 `json:"read_overhead_pct_vs_off"`
	Sweep            []obsSweepEntry    `json:"soasweep"`
	SweepOverheadPct map[string]float64 `json:"sweep_tracing_overhead_pct"`
	BudgetPct        float64            `json:"tracing_overhead_budget_pct"`
	WithinBudget     bool               `json:"within_budget"`
}

// tracingBudgetPct is the acceptance ceiling for the enabled-tracing
// sweep overhead: turning on -trace must cost less than this fraction
// of sweep wall time on both engine paths.
const tracingBudgetPct = 5.0

// installTracing wires a fresh trace buffer and flight recorder (the
// exact objects vortexsim -trace installs) and returns a teardown that
// restores the previous ones.
func installTracing(spanCap, eventCap int) (*obs.TraceBuffer, *obs.Flight, func()) {
	tb := obs.NewTraceBuffer(spanCap)
	f := obs.NewFlight(eventCap)
	prevT := obs.SetTracer(tb)
	prevF := obs.SetFlight(f)
	return tb, f, func() {
		obs.SetTracer(prevT)
		obs.SetFlight(prevF)
	}
}

// benchObsRead times the analytic ReadInto hot path under the three
// instrumentation states and returns the entries plus the per-state
// overhead versus the disabled baseline.
func benchObsRead(rows, cols, reps int) ([]obsReadEntry, map[string]float64, error) {
	var entries []obsReadEntry

	obs.SetEnabled(false)
	off, err := benchReadInto(hw.Analytic, rows, cols, 0, reps)
	obs.SetEnabled(true)
	if err != nil {
		return nil, nil, err
	}
	entries = append(entries, obsReadEntry{State: "off",
		NsPerOp: nsPerOp(off), AllocsOp: off.AllocsPerOp(), Iters: off.N})

	on, err := benchReadInto(hw.Analytic, rows, cols, 0, reps)
	if err != nil {
		return nil, nil, err
	}
	entries = append(entries, obsReadEntry{State: "metrics",
		NsPerOp: nsPerOp(on), AllocsOp: on.AllocsPerOp(), Iters: on.N})

	_, _, restore := installTracing(1<<14, 256)
	traced, err := benchReadInto(hw.Analytic, rows, cols, 0, reps)
	restore()
	if err != nil {
		return nil, nil, err
	}
	entries = append(entries, obsReadEntry{State: "metrics+tracing",
		NsPerOp: nsPerOp(traced), AllocsOp: traced.AllocsPerOp(), Iters: traced.N})

	overhead := map[string]float64{}
	if base := nsPerOp(off); base > 0 {
		overhead["metrics"] = 100 * (nsPerOp(on) - base) / base
		overhead["metrics+tracing"] = 100 * (nsPerOp(traced) - base) / base
	}
	return entries, overhead, nil
}

// runObsSweepArm executes the Full-scale soasweep once under a
// vectorize policy, optionally with the tracing pipeline installed, and
// reports the sweep-phase duration (the part the spans instrument).
func runObsSweepArm(pol experiment.VecPolicy, seed uint64, traced bool) (obsSweepEntry, error) {
	r, ok := experiment.Lookup("soasweep")
	if !ok {
		return obsSweepEntry{}, fmt.Errorf("soasweep runner not registered")
	}
	e := obsSweepEntry{Policy: pol.String(), Tracing: "off"}
	var tb *obs.TraceBuffer
	var f *obs.Flight
	if traced {
		var restore func()
		tb, f, restore = installTracing(1<<16, 256)
		defer restore()
		e.Tracing = "on"
	}
	ctx := experiment.WithRunConfig(context.Background(), experiment.RunConfig{Vectorize: pol})
	res, err := r.Run(ctx, experiment.Full, seed)
	if err != nil {
		return obsSweepEntry{}, err
	}
	rr, ok := res.(*experiment.RunResult)
	if !ok {
		return obsSweepEntry{}, fmt.Errorf("soasweep result is %T, want *experiment.RunResult", res)
	}
	soa, ok := rr.Unwrap().(*experiment.SoaResult)
	if !ok {
		return obsSweepEntry{}, fmt.Errorf("soasweep result is %T, want *experiment.SoaResult", rr.Unwrap())
	}
	e.Trials = soa.Trials
	e.SweepMs = ms(soa.Sweep)
	e.TotalMs = ms(rr.Elapsed)
	if traced {
		e.TraceSpans = tb.Len()
		e.TraceDropped = tb.Dropped()
		e.FlightEvents = len(f.Events())
	}
	return e, nil
}

// bestObsSweepArm repeats one sweep arm and keeps the fastest sweep
// phase — the same best-of discipline the kernel benchmarks use, since
// a single-core box schedules whole sweeps noisily.
func bestObsSweepArm(pol experiment.VecPolicy, seed uint64, traced bool, reps int) (obsSweepEntry, error) {
	var best obsSweepEntry
	for r := 0; r < reps; r++ {
		e, err := runObsSweepArm(pol, seed, traced)
		if err != nil {
			return obsSweepEntry{}, err
		}
		if r == 0 || e.SweepMs < best.SweepMs {
			best = e
		}
	}
	return best, nil
}

// runObs writes the PR-8 benchmark record: the tracing pipeline's cost.
// It times the analytic read hot path under metrics-off, metrics-on and
// metrics-plus-tracing, then the Full-scale soasweep under both engine
// paths (per-trial scalar and SoA-vectorized) with tracing off versus
// on, and checks the enabled-tracing sweep overhead against the
// five-percent acceptance budget. The budget check prints PASS or FAIL
// but never fails the command: single runs on a noisy shared box swing
// more than the margin, and the JSON record is the reviewable artifact.
func runObs(out string, seed uint64, reps int) error {
	obs.Default().Reset()
	rep := obsReport{
		PR:         8,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      experiment.Full.String(),
		Seed:       seed,
		BudgetPct:  tracingBudgetPct,
	}

	reads, readOverhead, err := benchObsRead(784, 10, reps)
	if err != nil {
		return err
	}
	rep.ReadPath = reads
	rep.ReadOverheadPct = readOverhead

	// Whole-sweep arms are seconds each; best-of-3 bounds the wall time
	// while still shaving scheduler noise.
	sreps := reps
	if sreps > 3 {
		sreps = 3
	}
	rep.SweepOverheadPct = map[string]float64{}
	rep.WithinBudget = true
	for _, pol := range []experiment.VecPolicy{experiment.VecScalar, experiment.VecForce} {
		plain, err := bestObsSweepArm(pol, seed, false, sreps)
		if err != nil {
			return err
		}
		traced, err := bestObsSweepArm(pol, seed, true, sreps)
		if err != nil {
			return err
		}
		rep.Sweep = append(rep.Sweep, plain, traced)
		if plain.SweepMs > 0 {
			pct := 100 * (traced.SweepMs - plain.SweepMs) / plain.SweepMs
			rep.SweepOverheadPct[pol.String()] = pct
			if pct >= tracingBudgetPct {
				rep.WithinBudget = false
			}
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", out)
	for _, e := range rep.ReadPath {
		fmt.Printf("  analytic read [%s]: %.0f ns/op (%d allocs)\n", e.State, e.NsPerOp, e.AllocsOp)
	}
	for _, e := range rep.Sweep {
		extra := ""
		if e.Tracing == "on" {
			extra = fmt.Sprintf(" (%d spans, %d events)", e.TraceSpans, e.FlightEvents)
		}
		fmt.Printf("  soasweep full [%s, tracing %s]: sweep %.0f ms%s\n", e.Policy, e.Tracing, e.SweepMs, extra)
	}
	verdict := "PASS"
	if !rep.WithinBudget {
		verdict = "FAIL"
	}
	fmt.Printf("  tracing sweep overhead: scalar %+.2f%%, vectorized %+.2f%% (budget <%.0f%%): %s\n",
		rep.SweepOverheadPct["scalar"], rep.SweepOverheadPct["force"], tracingBudgetPct, verdict)
	return nil
}
