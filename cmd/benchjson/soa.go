package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"vortex/internal/experiment"
	"vortex/internal/mat"
	"vortex/internal/obs"
)

// soaSweepEntry records one arm of the Full-scale soasweep comparison:
// the per-trial scalar engine versus the trial-vectorized
// structure-of-arrays path, on the identical workload (the CSV parity of
// the two arms is asserted before anything is written).
type soaSweepEntry struct {
	Policy    string  `json:"policy"`
	Trials    int     `json:"trials"`
	SetupMs   float64 `json:"setup_ms"`
	SweepMs   float64 `json:"sweep_ms"`
	TotalMs   float64 `json:"total_ms"`
	PerTrial  float64 `json:"sweep_ms_per_trial"`
	VecTrials int64   `json:"vectorized_trials"`
}

// soaKernelEntry records the ns/op of the fused batched read kernel at
// the paper's full-scale geometry for one ISA dispatch level.
type soaKernelEntry struct {
	ISA      string  `json:"isa"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	Iters    int     `json:"iterations"`
}

type soaReport struct {
	PR         int              `json:"pr"`
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Scale      string           `json:"scale"`
	Seed       uint64           `json:"seed"`
	Sweep      []soaSweepEntry  `json:"soasweep"`
	Speedup    float64          `json:"sweep_speedup_vectorized"`
	Parity     string           `json:"csv_parity"`
	Kernels    []soaKernelEntry `json:"mulveclanes_784x10x8"`
	OpCounts   map[string]int64 `json:"op_counts"`
}

// runSoaArm executes the Full-scale soasweep under one vectorize policy
// and returns its timing entry plus the CSV rendering for the parity
// check.
func runSoaArm(pol experiment.VecPolicy, seed uint64) (soaSweepEntry, string, error) {
	r, ok := experiment.Lookup("soasweep")
	if !ok {
		return soaSweepEntry{}, "", fmt.Errorf("soasweep runner not registered")
	}
	vecBefore := obs.Default().Counter("experiment.vec.trials").Value()
	ctx := experiment.WithRunConfig(context.Background(), experiment.RunConfig{Vectorize: pol})
	res, err := r.Run(ctx, experiment.Full, seed)
	if err != nil {
		return soaSweepEntry{}, "", err
	}
	rr, ok := res.(*experiment.RunResult)
	if !ok {
		return soaSweepEntry{}, "", fmt.Errorf("soasweep result is %T, want *experiment.RunResult", res)
	}
	soa, ok := rr.Unwrap().(*experiment.SoaResult)
	if !ok {
		return soaSweepEntry{}, "", fmt.Errorf("soasweep result is %T, want *experiment.SoaResult", rr.Unwrap())
	}
	e := soaSweepEntry{
		Policy:    pol.String(),
		Trials:    soa.Trials,
		SetupMs:   ms(soa.Setup),
		SweepMs:   ms(soa.Sweep),
		TotalMs:   ms(rr.Elapsed),
		VecTrials: obs.Default().Counter("experiment.vec.trials").Value() - vecBefore,
	}
	if soa.Trials > 0 {
		e.PerTrial = e.SweepMs / float64(soa.Trials)
	}
	return e, res.CSV(), nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// benchMulVecLanes times the fused batched read kernel — Tensor3
// MulVecLanesTo at the full-scale 784x10 geometry with a full lane
// group — under one ISA dispatch level.
func benchMulVecLanes(isa string, reps int) (soaKernelEntry, error) {
	prev := mat.SetKernelISA(isa)
	defer mat.SetKernelISA(prev)
	if got := mat.KernelISA(); got != isa {
		return soaKernelEntry{}, fmt.Errorf("kernel ISA %q unavailable (got %q)", isa, got)
	}
	const rows, cols, lanes = 784, 10, 8
	g := mat.NewTensor3(rows, cols, lanes)
	for i := range g.Data {
		g.Data[i] = 1e-5 + float64(i%97)*1e-7
	}
	x := ones(rows)
	dst := make([]float64, cols*lanes)
	var best testing.BenchmarkResult
	for r := 0; r < reps; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.MulVecLanesTo(dst, x)
			}
		})
		if r == 0 || nsPerOp(res) < nsPerOp(best) {
			best = res
		}
	}
	return soaKernelEntry{ISA: isa, NsPerOp: nsPerOp(best),
		AllocsOp: best.AllocsPerOp(), Iters: best.N}, nil
}

// runSoa writes the PR-7 benchmark record: the Full-scale soasweep under
// the per-trial scalar engine and the trial-vectorized path (byte-parity
// asserted), the sweep-phase speedup, and the fused read kernel's ns/op
// per ISA level.
func runSoa(out string, seed uint64, reps int) error {
	obs.Default().Reset()
	rep := soaReport{
		PR:         7,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      experiment.Full.String(),
		Seed:       seed,
	}

	scalar, scalarCSV, err := runSoaArm(experiment.VecScalar, seed)
	if err != nil {
		return err
	}
	rep.Sweep = append(rep.Sweep, scalar)
	vec, vecCSV, err := runSoaArm(experiment.VecForce, seed)
	if err != nil {
		return err
	}
	rep.Sweep = append(rep.Sweep, vec)
	if scalarCSV != vecCSV {
		return fmt.Errorf("soasweep CSV differs between the scalar and vectorized arms; refusing to write %s", out)
	}
	rep.Parity = "byte-identical"
	if vec.SweepMs > 0 {
		rep.Speedup = scalar.SweepMs / vec.SweepMs
	}

	for _, isa := range []string{"generic", "avx2", "avx512"} {
		k, err := benchMulVecLanes(isa, reps)
		if err != nil {
			continue // ISA not available on this host
		}
		rep.Kernels = append(rep.Kernels, k)
	}
	rep.OpCounts = obs.Default().Snapshot().Counters

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n", out)
	fmt.Printf("  soasweep full (%d trials): scalar %.0f ms, vectorized %.0f ms -> %.1fx sweep speedup (CSV %s)\n",
		scalar.Trials, scalar.SweepMs, vec.SweepMs, rep.Speedup, rep.Parity)
	for _, k := range rep.Kernels {
		fmt.Printf("  mulveclanes 784x10x8 [%s]: %.0f ns/op (%d allocs)\n", k.ISA, k.NsPerOp, k.AllocsOp)
	}
	return nil
}
