// Command promcheck validates files in the Prometheus text exposition
// format (0.0.4) with the same minimal validator vortexd's scraper will
// use — CI runs it over vortexsim's -metrics-prom output to keep the
// exposition parseable.
//
// Usage:
//
//	promcheck FILE...
//
// Exit codes: 0 every file validates, 1 a file failed (the first
// offending line is printed), 2 usage error.
package main

import (
	"fmt"
	"os"

	"vortex/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: promcheck FILE...")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			code = 1
			continue
		}
		if err := obs.ValidatePrometheus(raw); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: OK\n", path)
	}
	os.Exit(code)
}
