// Command doccheck enforces godoc coverage: every exported top-level
// identifier — package clauses included — in the packages it is pointed
// at must carry a doc comment. It exits nonzero and lists the offenders
// otherwise, so CI can gate on documentation the same way it gates on
// tests.
//
// Usage:
//
//	doccheck [-v] ./internal/hw ./internal/obs ...
//
// Each argument is a directory containing one Go package (the ./...
// wildcard is not expanded; list directories explicitly or via the
// Makefile doccheck target). Test files are skipped. A package clause
// only needs a comment on one file of the package.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	verbose := flag.Bool("v", false, "list every checked package")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-v] dir [dir ...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range dirs {
		miss, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Printf("doccheck: %s: %d undocumented\n", dir, len(miss))
		}
		problems = append(problems, miss...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses the package in dir and returns one "file:line: name"
// string per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var miss []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		miss = append(miss, checkPackage(fset, dir, pkg)...)
	}
	return miss, nil
}

func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var miss []string
	pkgDocumented := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			pkgDocumented = true
		}
	}
	if !pkgDocumented {
		miss = append(miss, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		miss = append(miss, fmt.Sprintf("%s:%d: %s %s is undocumented",
			filepath.Join(dir, filepath.Base(p.Filename)), p.Line, what, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				name := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					r := receiverName(d.Recv.List[0].Type)
					if r != "" && !ast.IsExported(r) {
						continue // method on an unexported type
					}
					name = r + "." + name
				}
				report(d.Pos(), "func", name)
			case *ast.GenDecl:
				miss = append(miss, checkGenDecl(fset, dir, d)...)
			}
		}
	}
	return miss
}

// checkGenDecl handles const/var/type blocks: a doc comment on the block
// covers every spec inside it; otherwise each exported spec needs its
// own.
func checkGenDecl(fset *token.FileSet, dir string, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return nil
	}
	var miss []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		miss = append(miss, fmt.Sprintf("%s:%d: %s %s is undocumented",
			filepath.Join(dir, filepath.Base(p.Filename)), p.Line, what, name))
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
	return miss
}

// receiverName unwraps a method receiver type expression to its named
// type, tolerating pointers and generic instantiations.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.IndexListExpr:
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
