package vortex

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quick-start does, at a reduced scale.
func TestFacadeEndToEnd(t *testing.T) {
	trainSet, err := Digits(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	testSet, err := Digits(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, err = Undersample(trainSet, 4)
	if err != nil {
		t.Fatal(err)
	}
	testSet, err = Undersample(testSet, 4)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultNCSConfig(trainSet.Features(), 10)
	cfg.Sigma = 0.5
	cfg.Redundancy = 8
	sys, err := BuildNCS(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	vcfg := DefaultVortexConfig()
	res, err := TrainVortex(sys, trainSet, vcfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights == nil || res.TrainRate <= 0.2 {
		t.Fatalf("vortex training failed: %+v", res.Result)
	}
	rate, err := sys.Evaluate(testSet)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0.2 {
		t.Fatalf("test rate %.3f implausibly low", rate)
	}
}

func TestFacadeBaselines(t *testing.T) {
	trainSet, err := Digits(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, err = Undersample(trainSet, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildNCS(DefaultNCSConfig(trainSet.Features(), 10), 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainOLD(sys, trainSet, OLDConfig{}, 7); err != nil {
		t.Fatal(err)
	}
	sys2, err := BuildNCS(DefaultNCSConfig(trainSet.Features(), 10), 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainCLD(sys2, trainSet, CLDConfig{Epochs: 5}, 7); err != nil {
		t.Fatal(err)
	}
}

func TestScalesExported(t *testing.T) {
	if Quick.String() != "quick" || Default.String() != "default" || Full.String() != "full" {
		t.Fatal("scale re-exports broken")
	}
}

func TestFacadeNewSchemes(t *testing.T) {
	trainSet, err := Digits(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, err = Undersample(trainSet, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultNCSConfig(trainSet.Features(), 10)
	cfg.Sigma = 0.5
	sys, err := BuildNCS(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainPV(sys, trainSet, PVConfig{}, 10); err != nil {
		t.Fatal(err)
	}

	net, err := TrainMLP(trainSet, 10, MLPConfig{Hidden: 12, Epochs: 5}, 11)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := BuildMLPHardware(net, MLPHardwareConfig{Sigma: 0.3}, trainSet, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Evaluate(trainSet); err != nil {
		t.Fatal(err)
	}

	tiled, err := BuildTiled(trainSet.Features(), 10, TileConfig{MaxRows: 16}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := tiled.Tiles(); r < 2 {
		t.Fatalf("expected multiple tile rows, got %d", r)
	}
}
