# Standard entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json bench-json-fleet bench-json-soa bench-json-obs bench-json-serve doccheck fuzz experiments fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the training-based integration tests; finishes in a few seconds.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/obs/
	$(GO) test -race ./internal/hw/
	$(GO) test -race ./internal/mat/
	$(GO) test -race ./internal/ncs/ -run 'TestTrialSet'
	$(GO) test -race ./internal/experiment/ -run 'TestFig2|TestParallel|TestFaultSweep|TestRegistry|TestRunners|TestTrial|TestRetry|TestPanic|TestPartial|TestCheckpoint|TestFatal|TestSaveTrial|TestNonPartial|TestEnsemble|TestVec|TestMutating|TestBatchStage|TestSoaSweep|TestScalarTrial|TestCrashDemo'
	$(GO) test -race ./cmd/vortexsim/
	$(GO) test -race ./internal/fault/
	$(GO) test -race ./internal/fleet/
	$(GO) test -race ./internal/serve/
	$(GO) test -race ./internal/chaos/

# Regenerates every paper table/figure plus the extension studies at
# Default scale and records the outputs at the repository root.
bench:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem -benchtime=1x -timeout 7200s . 2>&1 | tee bench_output.txt
	$(GO) test -bench=BenchmarkBackend -benchmem ./internal/hw/ 2>&1 | tee -a bench_output.txt

# Machine-readable perf record: steady-state and batched read-path
# ns/op and allocs/op on both backends, warm vs cold parasitic solves,
# and the instrumentation layer's measured overhead (BENCH_pr4.json).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_pr4.json

# Self-healing fleet record: router read throughput plus the
# kill-and-heal scenario's availability/accuracy (BENCH_pr6.json).
bench-json-fleet:
	$(GO) run ./cmd/benchjson -fleet -o BENCH_pr6.json

# Trial-vectorized Monte-Carlo record: the Full-scale soasweep under the
# per-trial scalar engine vs the structure-of-arrays path (byte-parity
# asserted) plus the fused read kernel's ns/op per ISA (BENCH_pr7.json).
bench-json-soa:
	$(GO) run ./cmd/benchjson -soa -o BENCH_pr7.json

# Tracing-pipeline overhead record: the analytic read hot path under
# metrics-off / metrics-on / metrics-plus-tracing, and the Full-scale
# soasweep on both engine paths with tracing off vs on, checked against
# the five-percent overhead budget (BENCH_pr8.json).
bench-json-obs:
	$(GO) run ./cmd/benchjson -obs -o BENCH_pr8.json

# Serving-path saturation record: vortexload boots a quick-scale fleet
# server in-process and drives the binary hot path to saturation,
# recording qps and the p50/p99/p999 latency profile (BENCH_pr9.json).
bench-json-serve:
	$(GO) run ./cmd/vortexload -selfserve -scale quick -seed 42 -n 40000 -c 16 -proto binary -o BENCH_pr9.json

# Doc-coverage gate: every exported identifier in every package must
# carry a godoc comment (see cmd/doccheck).
doccheck:
	$(GO) run ./cmd/doccheck $(shell find ./internal ./cmd -type d | sort)

# Short fuzz sessions over the quantizer and the device dynamics.
fuzz:
	$(GO) test ./internal/adc/ -fuzz FuzzQuantize -fuzztime 30s
	$(GO) test ./internal/device/ -fuzz FuzzPulseForTarget -fuzztime 30s
	$(GO) test ./internal/device/ -fuzz FuzzAdvance -fuzztime 30s

experiments:
	$(GO) run ./cmd/vortexsim -exp all -scale default

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt
