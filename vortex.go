// Package vortex is a from-scratch Go reproduction of "Vortex:
// Variation-aware Training for Memristor X-bar" (Liu, Li, Chen, Li, Wu,
// Huang — DAC 2015).
//
// It provides, on top of a complete behavioural simulation stack
// (memristor device physics, crossbar arrays with IR-drop parasitics,
// ADC/DAC periphery, and a synthetic MNIST-like digit benchmark):
//
//   - the two conventional hardware training schemes the paper analyzes —
//     close-loop on-device training (CLD) and open-loop off-device
//     training (OLD);
//   - the Vortex scheme: variation-aware training (VAT) with its
//     self-tuning penalty scan, and adaptive mapping (AMP) from hardware
//     pre-testing;
//   - experiment drivers regenerating every figure and table of the
//     paper's evaluation.
//
// # Quick start
//
//	trainSet, _ := vortex.Digits(400, 1)
//	testSet, _ := vortex.Digits(200, 2)
//	sys, _ := vortex.BuildNCS(vortex.NCSConfig{Inputs: 784, Outputs: 10,
//		Sigma: 0.6, Redundancy: 100})
//	res, _ := vortex.TrainVortex(sys, trainSet, vortex.DefaultVortexConfig(), 7)
//	rate, _ := sys.Evaluate(testSet)
//	fmt.Printf("gamma*=%.2f test rate %.1f%%\n", res.Gamma, 100*rate)
//
// The deeper layers (device, xbar, irdrop, adc, mapping, opt, ...) live
// under internal/ and are documented in DESIGN.md.
package vortex

import (
	"context"

	"vortex/internal/core"
	"vortex/internal/dataset"
	"vortex/internal/experiment"
	"vortex/internal/fault"
	"vortex/internal/mat"
	"vortex/internal/mlp"
	"vortex/internal/ncs"
	"vortex/internal/rng"
	"vortex/internal/tile"
	"vortex/internal/train"
)

// Re-exported configuration and result types.
type (
	// NCSConfig describes a neuromorphic computing system instance.
	NCSConfig = ncs.Config
	// NCS is an assembled crossbar-pair system.
	NCS = ncs.NCS
	// VortexConfig controls the integrated Vortex pipeline.
	VortexConfig = core.VortexConfig
	// VortexResult reports a Vortex training run.
	VortexResult = core.VortexResult
	// CLDConfig controls close-loop on-device training.
	CLDConfig = train.CLDConfig
	// OLDConfig controls open-loop off-device training.
	OLDConfig = train.OLDConfig
	// TrainResult reports a CLD/OLD training run.
	TrainResult = train.Result
	// DigitSet is a labeled image dataset.
	DigitSet = dataset.Set
	// Matrix is the dense row-major matrix used for weights throughout.
	Matrix = mat.Matrix
	// Scale selects experiment size (Quick/Default/Full).
	Scale = experiment.Scale
)

// Experiment scales.
const (
	Quick   = experiment.Quick
	Default = experiment.Default
	Full    = experiment.Full
)

// DefaultNCSConfig returns the paper's evaluation setup for a given
// logical size.
func DefaultNCSConfig(inputs, outputs int) NCSConfig {
	return ncs.DefaultConfig(inputs, outputs)
}

// DefaultVortexConfig returns the full Vortex pipeline configuration.
func DefaultVortexConfig() VortexConfig { return core.DefaultVortexConfig() }

// BuildNCS fabricates an NCS with the given configuration and seed.
func BuildNCS(cfg NCSConfig, seed uint64) (*NCS, error) {
	return ncs.New(cfg, rng.New(seed))
}

// Digits generates perClass samples of every digit class at 28x28 with
// the benchmark's default distortion model.
func Digits(perClass int, seed uint64) (*DigitSet, error) {
	return dataset.GenerateBalanced(dataset.DefaultConfig(), perClass, rng.New(seed))
}

// Undersample reduces a digit set by an integer factor (28 -> 14 -> 7),
// as in the paper's Table 1.
func Undersample(s *DigitSet, factor int) (*DigitSet, error) {
	return dataset.Undersample(s, factor, dataset.Decimate)
}

// TrainVortex runs the integrated Vortex pipeline (pre-test, self-tuned
// VAT, AMP, program) on the NCS.
func TrainVortex(n *NCS, set *DigitSet, cfg VortexConfig, seed uint64) (*VortexResult, error) {
	return core.TrainVortex(n, set, cfg, rng.New(seed))
}

// TrainCLD runs close-loop on-device training on the NCS.
func TrainCLD(n *NCS, set *DigitSet, cfg CLDConfig, seed uint64) (*TrainResult, error) {
	return train.CLD(n, set, cfg, rng.New(seed))
}

// TrainOLD runs open-loop off-device training on the NCS.
func TrainOLD(n *NCS, set *DigitSet, cfg OLDConfig, seed uint64) (*TrainResult, error) {
	return train.OLD(n, set, cfg, rng.New(seed))
}

// TrainPV runs program-and-verify training on the NCS: software GDT
// followed by a per-cell verify loop that measures and cancels device
// variation.
func TrainPV(n *NCS, set *DigitSet, cfg PVConfig, seed uint64) (*TrainResult, error) {
	return train.PV(n, set, cfg, rng.New(seed))
}

// PVConfig controls program-and-verify training.
type PVConfig = train.PVConfig

// Tiled types re-export the partitioned-crossbar support.
type (
	// TileConfig describes a tiled array (bounded tile geometry plus
	// per-tile device parameters).
	TileConfig = tile.Config
	// TiledArray is a grid of crossbar tiles computing one logical layer
	// with digital partial sums.
	TiledArray = tile.Array
)

// BuildTiled fabricates a tiled array for an inputs x outputs layer.
func BuildTiled(inputs, outputs int, cfg TileConfig, seed uint64) (*TiledArray, error) {
	return tile.New(inputs, outputs, cfg, rng.New(seed))
}

// Fault types re-export the post-deployment fault model and the repair
// pipeline.
type (
	// FaultConfig sets the rates of each post-deployment fault class.
	FaultConfig = fault.Config
	// FaultInjector mutates a live NCS with the configured fault mix.
	FaultInjector = fault.Injector
	// FaultReport counts the damage done by one injection or wear pass.
	FaultReport = fault.Report
	// FaultMap is the per-cell health classification from a scan.
	FaultMap = fault.Map
	// FaultScanOptions controls a health scan.
	FaultScanOptions = fault.ScanOptions
	// RepairPolicy sets the knobs of the repair pipeline.
	RepairPolicy = fault.Policy
	// RepairOutcome reports what a repair pass did.
	RepairOutcome = fault.Outcome
)

// NewFaultInjector builds a seeded fault injector.
func NewFaultInjector(cfg FaultConfig, seed uint64) (*FaultInjector, error) {
	return fault.NewInjector(cfg, rng.New(seed))
}

// ScanFaults runs the cheap two-target health scan over both arrays of
// the NCS, classifying every cell as healthy, suspect or dead. The scan
// stops early with ctx.Err() if ctx ends between hardware passes.
func ScanFaults(ctx context.Context, n *NCS, opts FaultScanOptions) (*FaultMap, error) {
	return fault.Scan(ctx, n, opts)
}

// RepairNCS runs the detect -> fault-aware remap -> reprogram -> verify
// repair pipeline on the NCS for the given trained weights, honoring
// ctx cancellation between rounds and scan passes.
func RepairNCS(ctx context.Context, n *NCS, w *Matrix, pol RepairPolicy) (*RepairOutcome, error) {
	return fault.Repair(ctx, n, w, pol)
}

// MLP types re-export the two-layer extension.
type (
	// MLPConfig controls two-layer software training (set NoiseSigma for
	// variation-aware noise injection).
	MLPConfig = mlp.Config
	// MLPNet is a trained two-layer network.
	MLPNet = mlp.Net
	// MLPHardware is a two-layer network mapped onto two crossbar pairs.
	MLPHardware = mlp.Hardware
	// MLPHardwareConfig controls the mapping of an MLP onto crossbars.
	MLPHardwareConfig = mlp.HardwareConfig
)

// TrainMLP trains a two-layer network in software.
func TrainMLP(set *DigitSet, classes int, cfg MLPConfig, seed uint64) (*MLPNet, error) {
	return mlp.Train(set, classes, cfg, rng.New(seed))
}

// BuildMLPHardware fabricates two crossbar pairs, programs the network
// open loop and calibrates the inter-layer driver on calib.
func BuildMLPHardware(net *MLPNet, cfg MLPHardwareConfig, calib *DigitSet, seed uint64) (*MLPHardware, error) {
	return mlp.BuildHardware(net, cfg, calib, rng.New(seed))
}
