module vortex

go 1.22
