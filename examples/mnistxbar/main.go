// Mnistxbar runs the paper's main evaluation scenario end to end: a digit
// classifier on a memristor crossbar pair with device variation AND wire
// parasitics, trained three ways — OLD, CLD and Vortex — and scored on a
// held-out test set. It is the three-way comparison behind Table 1 and
// Fig. 9, in one runnable program.
//
//	go run ./examples/mnistxbar                # 14x14, quick
//	go run ./examples/mnistxbar -factor 1      # full 784-input setup (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vortex"
)

func main() {
	var (
		factor   = flag.Int("factor", 2, "benchmark undersampling factor (1=28x28, 2=14x14, 4=7x7)")
		sigma    = flag.Float64("sigma", 0.6, "device variation")
		rwire    = flag.Float64("rwire", 2.5, "wire resistance per segment [ohm]")
		perClass = flag.Int("perclass", 120, "training samples per class")
		seed     = flag.Uint64("seed", 11, "seed")
	)
	flag.Parse()

	trainSet, err := vortex.Digits(*perClass, *seed)
	if err != nil {
		log.Fatal(err)
	}
	testSet, err := vortex.Digits(*perClass/2, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	if *factor > 1 {
		if trainSet, err = vortex.Undersample(trainSet, *factor); err != nil {
			log.Fatal(err)
		}
		if testSet, err = vortex.Undersample(testSet, *factor); err != nil {
			log.Fatal(err)
		}
	}
	inputs := trainSet.Features()
	fmt.Printf("digit benchmark: %d inputs, %d train / %d test samples\n",
		inputs, trainSet.Len(), testSet.Len())
	fmt.Printf("hardware: sigma=%.1f, rwire=%.1f ohm, 6-bit ADCs\n\n", *sigma, *rwire)

	build := func(redundancy int) *vortex.NCS {
		cfg := vortex.DefaultNCSConfig(inputs, 10)
		cfg.Sigma = *sigma
		cfg.RWire = *rwire
		cfg.Redundancy = redundancy
		sys, err := vortex.BuildNCS(cfg, *seed+2)
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	report := func(name string, sys *vortex.NCS, trainRate float64, start time.Time) {
		testRate, err := sys.Evaluate(testSet)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s train %5.1f%%   test %5.1f%%   (%v)\n",
			name, 100*trainRate, 100*testRate, time.Since(start).Round(time.Millisecond))
	}

	start := time.Now()
	oldSys := build(0)
	oldRes, err := vortex.TrainOLD(oldSys, trainSet, vortex.OLDConfig{CompensateIR: true}, *seed+3)
	if err != nil {
		log.Fatal(err)
	}
	report("OLD", oldSys, oldRes.TrainRate, start)

	start = time.Now()
	cldSys := build(0)
	cldRes, err := vortex.TrainCLD(cldSys, trainSet, vortex.CLDConfig{}, *seed+3)
	if err != nil {
		log.Fatal(err)
	}
	report("CLD", cldSys, cldRes.TrainRate, start)

	start = time.Now()
	vSys := build(20 * inputs / 196)
	vRes, err := vortex.TrainVortex(vSys, trainSet, vortex.DefaultVortexConfig(), *seed+3)
	if err != nil {
		log.Fatal(err)
	}
	report("Vortex", vSys, vRes.TrainRate, start)
	fmt.Printf("\nVortex internals: sigma-hat %.2f -> effective %.2f after AMP, gamma* %.2f\n",
		vRes.SigmaHat, vRes.SigmaEffective, vRes.Gamma)
}
