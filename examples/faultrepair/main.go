// Faultrepair walks the post-deployment fault story end to end on a
// small system: train with Vortex, strike the running arrays with stuck
// conversions and a line open, watch the accuracy drop, then run the
// detect -> fault-aware remap -> reprogram -> verify repair pipeline
// and re-evaluate.
//
//	go run ./examples/faultrepair
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"vortex/internal/core"
	"vortex/internal/dataset"
	"vortex/internal/fault"
	"vortex/internal/ncs"
	"vortex/internal/opt"
	"vortex/internal/rng"
	"vortex/internal/xbar"
)

func main() {
	var (
		sigma     = flag.Float64("sigma", 0.4, "device variation")
		stuckRate = flag.Float64("stuck", 0.08, "per-cell stuck conversion rate of the strike")
		lineRate  = flag.Float64("lines", 0.01, "per-line open rate of the strike")
		seed      = flag.Uint64("seed", 11, "seed")
	)
	flag.Parse()

	// A 7x7 digit task: 49 logical rows, 10 outputs, 8 redundant rows.
	cfg := dataset.DefaultConfig()
	trainSet, err := dataset.GenerateBalanced(cfg, 60, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	testSet, err := dataset.GenerateBalanced(cfg, 30, rng.New(*seed+1))
	if err != nil {
		log.Fatal(err)
	}
	if trainSet, err = dataset.Undersample(trainSet, 4, dataset.Decimate); err != nil {
		log.Fatal(err)
	}
	if testSet, err = dataset.Undersample(testSet, 4, dataset.Decimate); err != nil {
		log.Fatal(err)
	}

	ncfg := ncs.DefaultConfig(trainSet.Features(), 10)
	ncfg.Sigma = *sigma
	ncfg.Redundancy = 8
	sys, err := ncs.New(ncfg, rng.New(*seed+2))
	if err != nil {
		log.Fatal(err)
	}

	// Train and deploy with the full Vortex pipeline (fixed gamma keeps
	// the example fast).
	vcfg := core.DefaultVortexConfig()
	vcfg.UseSelfTune = false
	vcfg.Gamma = 0.05
	vcfg.SigmaOverride = *sigma
	vcfg.SGD = opt.SGDConfig{Epochs: 40}
	vcfg.PretestSenses = 1
	vres, err := core.TrainVortex(sys, trainSet, vcfg, rng.New(*seed+3))
	if err != nil {
		log.Fatal(err)
	}
	healthy, err := sys.Evaluate(testSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed: test rate %.1f%% (sigma=%.1f, gamma=%.2f)\n",
		100*healthy, *sigma, vres.Gamma)

	// The strike: cells convert to stuck states, a line may crack open.
	inj, err := fault.NewInjector(fault.Config{
		StuckRate:    *stuckRate,
		LineOpenRate: *lineRate,
	}, rng.New(*seed+4))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := inj.Inject(sys)
	if err != nil {
		log.Fatal(err)
	}
	struck, err := sys.Evaluate(testSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrike:   %d stuck conversions, %d line opens (%d cells) -> test rate %.1f%%\n",
		rep.Stuck, rep.LineOpens, rep.OpenCells, 100*struck)

	// Detect: the cheap two-target health scan.
	fmap, err := fault.Scan(context.Background(), sys, fault.ScanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan:     %d dead, %d suspect of %d cells (dead fraction %.1f%%)\n",
		fmap.DeadCells(), fmap.SuspectCells(), 2*fmap.Rows*fmap.Cols,
		100*fmap.DeadFraction())

	// Repair: remap around (or onto!) the casualties, reprogram, verify.
	out, err := fault.Repair(context.Background(), sys, vres.Weights, fault.Policy{
		Verify: xbar.VerifyOptions{TolLog: 0.02, MaxIter: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	repaired, err := sys.Evaluate(testSet)
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for i, p := range out.RowMap {
		if vres.RowMap[i] != p {
			moved++
		}
	}
	fmt.Printf("\nrepair:   %d round(s), moved %d of %d rows, residual damage %.2f, degraded=%v\n",
		out.Rounds, moved, len(out.RowMap), out.Damage, out.Degraded)
	fmt.Printf("          test rate %.1f%% (was %.1f%% struck, %.1f%% healthy)\n",
		100*repaired, 100*struck, 100*healthy)
	fmt.Printf("\nrecovered %+.1f of the %.1f points lost\n",
		100*(repaired-struck), 100*(healthy-struck))
}
