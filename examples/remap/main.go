// Remap walks through adaptive mapping (paper Sec. 4.2) step by step on a
// small, fully printable crossbar: fabricate with heavy variation and a
// few stuck cells, pre-test every device, compute row sensitivities and
// SWV, run the greedy Algorithm 1, and show how the effective variation
// seen by the weights — and the resulting classification rate — improves.
//
//	go run ./examples/remap
package main

import (
	"flag"
	"fmt"
	"log"

	"vortex/internal/dataset"
	"vortex/internal/mapping"
	"vortex/internal/ncs"
	"vortex/internal/opt"
	"vortex/internal/rng"
	"vortex/internal/train"
	"vortex/internal/xbar"
)

func main() {
	var (
		sigma   = flag.Float64("sigma", 0.8, "device variation")
		defects = flag.Float64("defects", 0.02, "stuck-at defect rate")
		seed    = flag.Uint64("seed", 5, "seed")
	)
	flag.Parse()

	// A 7x7 digit task: 49 logical rows, 10 outputs, 8 redundant rows.
	cfg := dataset.DefaultConfig()
	trainSet, err := dataset.GenerateBalanced(cfg, 60, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	testSet, err := dataset.GenerateBalanced(cfg, 30, rng.New(*seed+1))
	if err != nil {
		log.Fatal(err)
	}
	if trainSet, err = dataset.Undersample(trainSet, 4, dataset.Decimate); err != nil {
		log.Fatal(err)
	}
	if testSet, err = dataset.Undersample(testSet, 4, dataset.Decimate); err != nil {
		log.Fatal(err)
	}

	ncfg := ncs.DefaultConfig(trainSet.Features(), 10)
	ncfg.Sigma = *sigma
	ncfg.DefectRate = *defects
	ncfg.Redundancy = 8
	sys, err := ncs.New(ncfg, rng.New(*seed+2))
	if err != nil {
		log.Fatal(err)
	}

	// Train weights in software (plain GDT — this example isolates AMP).
	w, err := train.SoftwareGDT(trainSet, 10, opt.SGDConfig{Epochs: 40}, rng.New(*seed+3))
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: pre-test both arrays against an HRS background.
	fpos, err := sys.Pos.Pretest(100e3, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fneg, err := sys.Neg.Pretest(100e3, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-tested %d cells per array (sigma=%.1f, defect rate=%.2f)\n",
		len(fpos.Data), *sigma, *defects)

	// Step 2: sensitivity analysis (Eq. 11) over the workload.
	xmean := trainSet.MeanInput()
	sens := mapping.RowSensitivity(w, xmean)
	hi, lo := 0, 0
	for i, s := range sens {
		if s > sens[hi] {
			hi = i
		}
		if s < sens[lo] {
			lo = i
		}
	}
	fmt.Printf("row sensitivity: max %.3f (row %d), min %.3f (row %d)\n",
		sens[hi], hi, sens[lo], lo)

	// Step 3: evaluate before AMP (identity mapping).
	if err := sys.ProgramWeights(w, xbar.ProgramOptions{}); err != nil {
		log.Fatal(err)
	}
	before, err := sys.Evaluate(testSet)
	if err != nil {
		log.Fatal(err)
	}
	idMap := ncs.IdentityMap(trainSet.Features())
	fmt.Printf("\nbefore AMP: test rate %.1f%%, total SWV %.2f, effective sigma %.2f\n",
		100*before, mapping.TotalSWV(w, fpos, fneg, idMap),
		mapping.EffectiveSigma(w, fpos, fneg, idMap))

	// Step 4: greedy Algorithm 1 and re-evaluation.
	rowMap, err := mapping.Greedy(w, fpos, fneg, xmean)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.SetRowMap(rowMap); err != nil {
		log.Fatal(err)
	}
	if err := sys.ProgramWeights(w, xbar.ProgramOptions{}); err != nil {
		log.Fatal(err)
	}
	after, err := sys.Evaluate(testSet)
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for i, p := range rowMap {
		if p != i {
			moved++
		}
	}
	fmt.Printf("after  AMP: test rate %.1f%%, total SWV %.2f, effective sigma %.2f\n",
		100*after, mapping.TotalSWV(w, fpos, fneg, rowMap),
		mapping.EffectiveSigma(w, fpos, fneg, rowMap))
	fmt.Printf("\ngreedy mapping moved %d of %d rows (%d redundant rows available)\n",
		moved, len(rowMap), ncfg.Redundancy)
	fmt.Printf("test rate change: %+.1f points\n", 100*(after-before))
}
