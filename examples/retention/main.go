// Retention demonstrates the lifetime of a programmed crossbar
// classifier under resistance drift, and how budgeting the drift into the
// variation-aware training margin extends it: two identically fabricated
// systems are trained — one against the fabrication variation only, one
// with the drift-equivalent sigma at a ten-year horizon folded in — then
// both are aged and re-evaluated at each decade.
//
//	go run ./examples/retention
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"vortex/internal/core"
	"vortex/internal/dataset"
	"vortex/internal/device"
	"vortex/internal/ncs"
	"vortex/internal/opt"
	"vortex/internal/rng"
)

func main() {
	var (
		sigma = flag.Float64("sigma", 0.3, "fabrication variation")
		nu    = flag.Float64("nu", 0.05, "mean drift exponent")
		nuSd  = flag.Float64("nusd", 0.03, "device-to-device drift spread")
		seed  = flag.Uint64("seed", 11, "seed")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	trainSet, err := dataset.GenerateBalanced(cfg, 120, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	testSet, err := dataset.GenerateBalanced(cfg, 60, rng.New(*seed+1))
	if err != nil {
		log.Fatal(err)
	}
	if trainSet, err = dataset.Undersample(trainSet, 2, dataset.Decimate); err != nil {
		log.Fatal(err)
	}
	if testSet, err = dataset.Undersample(testSet, 2, dataset.Decimate); err != nil {
		log.Fatal(err)
	}

	drift := device.DriftModel{NuMean: *nu, NuSigma: *nuSd, T0: 1}
	const tenYears = 3.15e8 // seconds
	driftSigma := drift.EquivalentSigma(tenYears)
	aware := math.Sqrt(*sigma**sigma + driftSigma*driftSigma)
	fmt.Printf("fabrication sigma %.2f; drift adds %.2f by ten years -> budget %.2f\n\n",
		*sigma, driftSigma, aware)

	// plain: conventional GDT with no variation margin at all (gamma 0).
	// budgeted: VAT margin sized for the drift budget at the horizon.
	build := func(trainSigma float64) *ncs.NCS {
		ncfg := ncs.DefaultConfig(trainSet.Features(), 10)
		ncfg.Sigma = *sigma
		ncfg.Redundancy = trainSet.Features() / 8
		sys, err := ncs.New(ncfg, rng.New(*seed+2))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.InitDrift(drift, rng.New(*seed+3)); err != nil {
			log.Fatal(err)
		}
		vcfg := core.DefaultVortexConfig()
		// Hold gamma fixed so the modeled sigma alone scales the margin
		// (rho grows with sigma): that is what "budgeting the drift into
		// the variation model" means. trainSigma = 0 means no margin at
		// all — conventional GDT.
		vcfg.UseSelfTune = false
		vcfg.Gamma = 0.1
		vcfg.SigmaOverride = trainSigma
		if trainSigma <= 0 {
			vcfg.Gamma = 0
			vcfg.SigmaOverride = 1e-9
		}
		vcfg.SGD = opt.SGDConfig{Epochs: 40}
		vcfg.DisableIntegrationRetrain = true
		if _, err := core.TrainVortex(sys, trainSet, vcfg, rng.New(*seed+4)); err != nil {
			log.Fatal(err)
		}
		return sys
	}
	plain := build(0)
	budgeted := build(aware)

	fmt.Printf("%-12s  %-8s  %-8s\n", "age", "plain", "budgeted")
	for _, age := range []struct {
		name string
		t    float64
	}{
		{"fresh", 1}, {"1 hour", 3600}, {"1 day", 86400},
		{"1 month", 2.6e6}, {"1 year", 3.15e7}, {"10 years", tenYears},
	} {
		if err := plain.AgeTo(age.t); err != nil {
			log.Fatal(err)
		}
		if err := budgeted.AgeTo(age.t); err != nil {
			log.Fatal(err)
		}
		rp, err := plain.Evaluate(testSet)
		if err != nil {
			log.Fatal(err)
		}
		rb, err := budgeted.Evaluate(testSet)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %6.1f%%   %6.1f%%\n", age.name, 100*rp, 100*rb)
	}
}
