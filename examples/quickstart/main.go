// Quickstart: build a memristor-crossbar NCS with device variation,
// train it with the Vortex pipeline, and report the test rate — the
// shortest end-to-end path through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vortex"
)

func main() {
	// A 14x14 digit task keeps the example under a few seconds; drop the
	// Undersample calls for the paper's full 784-input setup.
	trainSet, err := vortex.Digits(120, 1) // 120 per class = 1200 samples
	if err != nil {
		log.Fatal(err)
	}
	testSet, err := vortex.Digits(60, 2)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, err = vortex.Undersample(trainSet, 2)
	if err != nil {
		log.Fatal(err)
	}
	testSet, err = vortex.Undersample(testSet, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Fabricate the system: a positive/negative crossbar pair with
	// lognormal device variation (sigma 0.6), 6-bit output ADCs and 20
	// redundant rows for adaptive mapping to exploit.
	cfg := vortex.DefaultNCSConfig(trainSet.Features(), 10)
	cfg.Sigma = 0.6
	cfg.Redundancy = 20
	sys, err := vortex.BuildNCS(cfg, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Vortex: pre-test the devices, self-tune the variation penalty,
	// remap rows greedily, program open loop.
	res, err := vortex.TrainVortex(sys, trainSet, vortex.DefaultVortexConfig(), 4)
	if err != nil {
		log.Fatal(err)
	}
	testRate, err := sys.Evaluate(testSet)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated device variation sigma: %.2f\n", res.SigmaHat)
	fmt.Printf("effective sigma after adaptive mapping: %.2f\n", res.SigmaEffective)
	fmt.Printf("self-tuned penalty gamma: %.2f\n", res.Gamma)
	fmt.Printf("training rate: %.1f%%\n", 100*res.TrainRate)
	fmt.Printf("test rate:     %.1f%%\n", 100*testRate)
}
