// Columntrain reproduces the scenario of the paper's Sec. 3.1 (Fig. 2)
// interactively: a single crossbar column of 100 memristors is trained to
// emit 1 mA when every row is driven at 1 V, first open loop (OLD) and
// then close loop (CLD), at a chosen device-variation level. The example
// prints the landed per-cell resistances and the output discrepancy of
// both schemes, making the paper's core observation tangible: open-loop
// programming inherits the full device variation while feedback washes it
// out.
//
//	go run ./examples/columntrain -sigma 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"vortex/internal/adc"
	"vortex/internal/device"
	"vortex/internal/mat"
	"vortex/internal/rng"
	"vortex/internal/stats"
	"vortex/internal/xbar"
)

const (
	cells   = 100
	target  = 1e-3  // 1 mA column current
	rTarget = 100e3 // per-cell share of the goal at 1 V inputs
)

func main() {
	sigma := flag.Float64("sigma", 0.5, "lognormal device variation")
	seed := flag.Uint64("seed", 7, "fabrication seed")
	flag.Parse()

	cfg := xbar.Config{
		Rows:  cells,
		Cols:  1,
		Model: device.DefaultSwitchModel(),
		Sigma: *sigma,
	}
	xb, err := xbar.New(cfg, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	vin := mat.Constant(cells, 1.0)

	// --- OLD: one pre-calculated open-loop pass. ---
	targets := mat.NewMatrix(cells, 1)
	targets.Fill(rTarget)
	if err := xb.ProgramTargets(targets, xbar.ProgramOptions{}); err != nil {
		log.Fatal(err)
	}
	iOLD := xb.ReadIdeal(vin)[0]
	rs := make([]float64, cells)
	for c := 0; c < cells; c++ {
		rs[c] = xb.Cell(c, 0).Resistance(cfg.Model)
	}
	mu, sd, err := stats.FitLogNormal(rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLD: programmed %d cells to %.0f ohm open loop\n", cells, rTarget)
	fmt.Printf("  landed resistances: lognormal(mu=%.2f, sigma=%.2f) — target ln R = %.2f\n",
		mu, sd, math.Log(rTarget))
	fmt.Printf("  output current %.4f mA (target 1.0000), discrepancy %.1f%%\n\n",
		1e3*iOLD, 100*math.Abs(iOLD-target)/target)

	// --- CLD: reset, then iterate program-and-sense through a 6-bit ADC. ---
	xb.ResetAll()
	conv, err := adc.NewConverter(6, 0, 2*target)
	if err != nil {
		log.Fatal(err)
	}
	chain := adc.NewSenseChain(conv, 1, nil)
	belief := mat.Constant(cells, 1/cfg.Model.Roff)
	iters := 0
	for ; iters < 80; iters++ {
		sensed := chain.Sense(xb.ReadIdeal(vin)[0])
		e := target - sensed
		if math.Abs(e) < target/64 { // half LSB of the 6-bit chain
			break
		}
		var pulses []xbar.CellPulse
		dg := e / float64(cells)
		for c := 0; c < cells; c++ {
			next := belief[c] + dg
			if next < 1/cfg.Model.Roff {
				next = 1 / cfg.Model.Roff
			} else if next > 1/cfg.Model.Ron {
				next = 1 / cfg.Model.Ron
			}
			if next == belief[c] {
				continue
			}
			p := cfg.Model.PulseForTarget(-math.Log(belief[c]), -math.Log(next))
			belief[c] = next
			if p.Width > 0 {
				pulses = append(pulses, xbar.CellPulse{Row: c, Col: 0, Pulse: p})
			}
		}
		if len(pulses) == 0 {
			break
		}
		if err := xb.ProgramBatch(pulses, xbar.ProgramOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	iCLD := xb.ReadIdeal(vin)[0]
	fmt.Printf("CLD: converged in %d program-and-sense iterations (6-bit ADC)\n", iters)
	fmt.Printf("  output current %.4f mA, discrepancy %.2f%%\n\n",
		1e3*iCLD, 100*math.Abs(iCLD-target)/target)

	fmt.Printf("at sigma=%.2f the open-loop discrepancy is %.0fx the close-loop one\n",
		*sigma, math.Abs(iOLD-target)/math.Max(math.Abs(iCLD-target), 1e-9))
}
