package vortex_test

import (
	"fmt"
	"log"

	"vortex"
)

// ExampleTrainOLD shows the simplest hardware training path: software GDT
// followed by one open-loop programming pass, on ideal (variation-free)
// hardware where the result is deterministic.
func ExampleTrainOLD() {
	trainSet, err := vortex.Digits(10, 1)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, err = vortex.Undersample(trainSet, 4) // 7x7 keeps this fast
	if err != nil {
		log.Fatal(err)
	}
	cfg := vortex.DefaultNCSConfig(trainSet.Features(), 10)
	cfg.ADCBits = 0 // ideal sensing: deterministic output
	sys, err := vortex.BuildNCS(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := vortex.TrainOLD(sys, trainSet, vortex.OLDConfig{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training rate %.0f%%\n", 100*res.TrainRate)
	// Output: training rate 95%
}

// ExampleBuildTiled demonstrates partitioning a layer across crossbar
// tiles: the grid geometry follows from the tile bounds.
func ExampleBuildTiled() {
	a, err := vortex.BuildTiled(100, 10, vortex.TileConfig{
		MaxRows: 32,
		MaxCols: 5,
		ADCBits: -1,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	r, c := a.Tiles()
	fmt.Printf("%dx%d tiles, %d sense channels\n", r, c, a.SenseChannels())
	// Output: 4x2 tiles, 40 sense channels
}
